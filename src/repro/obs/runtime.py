"""Wall-clock runtime telemetry: the operational plane of the stack.

Everything in :mod:`repro.obs.metrics` and :mod:`repro.obs.trace` is
*simulated*-time and deterministic; none of it can tell an operator how
much real CPU a shard burned, how big a worker's RSS grew, or what the
serve daemon was doing when it was SIGKILLed.  This module is the
other clock: a strictly separated wall-clock plane that rides **beside**
the deterministic artifacts and is never folded into them — golden
traces, merged stats and metric snapshots stay byte/bit-identical
whether telemetry is on or off (pinned by
``tests/engine/test_telemetry.py``).

Four pieces:

- :class:`ShardTelemetry` / :class:`TelemetryProbe` — per-shard
  resource accounting.  A worker samples ``resource.getrusage`` and
  ``time.perf_counter_ns`` around shard execution and ships a small
  picklable record back on a side channel next to the shard result.
  With telemetry disabled the probe is never constructed, so the fast
  path makes **zero** rusage/clock calls (every clock read goes
  through the module-level :func:`_clock_ns`/:func:`_rusage` hooks,
  which tests monkeypatch-count to prove it).
- :class:`TelemetryRollup` — the associative fold of shard telemetry
  into per-job and per-service aggregates (CPU seconds, max RSS, wall
  time, shard/retry counts).  ``add`` and ``merge`` are associative
  with :func:`TelemetryRollup` () as identity, mirroring the metrics
  snapshot fold.
- :class:`FlightRecorder` — a bounded ring buffer of structured ops
  events (submit/schedule/start/finish/crash/checkpoint/recover) with
  overflow counting.  Optionally file-backed: each event is appended
  to a JSONL sidecar and reloaded on construction, so the recorder
  survives a SIGKILL and the restarted daemon still knows what its
  predecessor was doing.
- Prometheus text exposition — :func:`render_prometheus` renders a
  metrics snapshot plus telemetry rollups in exposition format 0.0.4;
  :func:`validate_exposition` is the syntax checker CI scrapes a live
  daemon with.

Plus the profiling sidecar: :func:`profile_blob` serializes one
worker's cProfile run and :func:`merged_hotspots` merges any number of
those blobs into one deterministically ordered hotspot table (the
``--profile-shards`` flag on ``repro fleet`` / ``repro analyze``).
"""

from __future__ import annotations

import json
import marshal
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Union

from repro.errors import ReproError

try:  # POSIX-only; Windows ships without resource
    import resource as _resource_module
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource_module = None

__all__ = [
    "FlightRecorder",
    "ShardTelemetry",
    "TelemetryProbe",
    "TelemetryRollup",
    "fold_shard_telemetry",
    "host_metadata",
    "merged_hotspots",
    "profile_blob",
    "prometheus_name",
    "render_prometheus",
    "telemetry_available",
    "validate_exposition",
]


# ---------------------------------------------------------------------------
# clock / rusage access points
# ---------------------------------------------------------------------------
#
# Every wall-clock or rusage read the telemetry plane makes goes through
# these two module functions.  That is the disabled-fast-path contract:
# tests monkeypatch them with counting stubs and assert zero calls when
# telemetry is off — a regression that sneaks a clock read into the
# default path fails loudly.

def _clock_ns() -> int:
    """The telemetry plane's clock (``time.perf_counter_ns``)."""
    return time.perf_counter_ns()


def _rusage():
    """The telemetry plane's rusage sampler (RUSAGE_SELF)."""
    return _resource_module.getrusage(_resource_module.RUSAGE_SELF)


def telemetry_available() -> bool:
    """Can this platform sample rusage at all?"""
    return _resource_module is not None


def _max_rss_kb(ru_maxrss: int) -> int:
    """Normalize ``ru_maxrss`` to kilobytes (macOS reports bytes)."""
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return ru_maxrss // 1024
    return ru_maxrss


def host_metadata() -> Dict[str, Any]:
    """Host facts stamped into benchmark baselines and exposition.

    Cross-machine perf numbers are uninterpretable without these; the
    bench gate ignores the block when comparing (it lives in ``meta``).
    """
    import platform

    return {
        "cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


# ---------------------------------------------------------------------------
# per-shard resource accounting
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardTelemetry:
    """Wall-clock resource usage of one shard execution.

    Small and picklable on purpose: it rides back from the worker on a
    side channel next to the shard result and must never bloat the
    result pipe.  ``max_rss_kb`` is the process high-water mark (the
    warm pool reuses workers, so it is a property of the worker, not
    of this shard alone — still the number an operator wants).
    """

    shard_index: int
    wall_ns: int
    cpu_user_s: float
    cpu_system_s: float
    max_rss_kb: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean wire/pickle form."""
        return {
            "shard_index": self.shard_index,
            "wall_ns": self.wall_ns,
            "cpu_user_s": round(self.cpu_user_s, 6),
            "cpu_system_s": round(self.cpu_system_s, 6),
            "max_rss_kb": self.max_rss_kb,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardTelemetry":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            shard_index=int(payload.get("shard_index", 0)),
            wall_ns=int(payload.get("wall_ns", 0)),
            cpu_user_s=float(payload.get("cpu_user_s", 0.0)),
            cpu_system_s=float(payload.get("cpu_system_s", 0.0)),
            max_rss_kb=int(payload.get("max_rss_kb", 0)),
        )


class TelemetryProbe:
    """Samples the clock and rusage around one shard execution.

    Constructed only when telemetry is enabled; construction takes the
    start samples, :meth:`finish` takes the end samples and returns the
    delta as a :class:`ShardTelemetry`.  On platforms without
    ``resource`` the CPU/RSS fields are zero but wall time still works.
    """

    __slots__ = ("_start_ns", "_start_rusage")

    def __init__(self) -> None:
        self._start_rusage = _rusage() if telemetry_available() else None
        self._start_ns = _clock_ns()

    @classmethod
    def start(cls) -> "TelemetryProbe":
        """Begin sampling (alias for construction, reads better)."""
        return cls()

    def finish(self, shard_index: int) -> ShardTelemetry:
        """End sampling; the delta since :meth:`start`."""
        wall_ns = _clock_ns() - self._start_ns
        if self._start_rusage is None:  # pragma: no cover - non-POSIX
            return ShardTelemetry(shard_index=shard_index, wall_ns=wall_ns,
                                  cpu_user_s=0.0, cpu_system_s=0.0,
                                  max_rss_kb=0)
        end = _rusage()
        return ShardTelemetry(
            shard_index=shard_index,
            wall_ns=wall_ns,
            cpu_user_s=end.ru_utime - self._start_rusage.ru_utime,
            cpu_system_s=end.ru_stime - self._start_rusage.ru_stime,
            max_rss_kb=_max_rss_kb(end.ru_maxrss),
        )


# ---------------------------------------------------------------------------
# rollups
# ---------------------------------------------------------------------------

@dataclass
class TelemetryRollup:
    """Associative fold of shard telemetry (per-job / per-service).

    Sums add, the RSS high-water mark takes the max, and shard counts
    accumulate, so ``a.merge(b)`` equals folding the union of their
    inputs in any order — the same contract as
    :func:`repro.obs.metrics.merge_snapshots`.  ``retries`` and
    ``queue_wait_s`` are folded in by the scheduler (they are facts
    about scheduling, not about any one shard's execution).
    """

    shards: int = 0
    wall_ns: int = 0
    cpu_user_s: float = 0.0
    cpu_system_s: float = 0.0
    max_rss_kb: int = 0
    retries: int = 0
    queue_wait_s: float = 0.0

    def add(self, telemetry: Union[ShardTelemetry, Dict[str, Any]]) -> None:
        """Fold one shard's telemetry into the rollup."""
        if isinstance(telemetry, dict):
            telemetry = ShardTelemetry.from_dict(telemetry)
        self.shards += 1
        self.wall_ns += telemetry.wall_ns
        self.cpu_user_s += telemetry.cpu_user_s
        self.cpu_system_s += telemetry.cpu_system_s
        self.max_rss_kb = max(self.max_rss_kb, telemetry.max_rss_kb)

    def merge(self, other: "TelemetryRollup") -> None:
        """Fold another rollup in (associative, identity = fresh)."""
        self.shards += other.shards
        self.wall_ns += other.wall_ns
        self.cpu_user_s += other.cpu_user_s
        self.cpu_system_s += other.cpu_system_s
        self.max_rss_kb = max(self.max_rss_kb, other.max_rss_kb)
        self.retries += other.retries
        self.queue_wait_s += other.queue_wait_s

    @property
    def cpu_s(self) -> float:
        """Total CPU seconds (user + system)."""
        return self.cpu_user_s + self.cpu_system_s

    @property
    def wall_s(self) -> float:
        """Total shard wall seconds (sum across shards, not elapsed)."""
        return self.wall_ns / 1e9

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean form (stored in job results and reports)."""
        return {
            "shards": self.shards,
            "wall_ns": self.wall_ns,
            "cpu_user_s": round(self.cpu_user_s, 6),
            "cpu_system_s": round(self.cpu_system_s, 6),
            "max_rss_kb": self.max_rss_kb,
            "retries": self.retries,
            "queue_wait_s": round(self.queue_wait_s, 6),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TelemetryRollup":
        """Rebuild from :meth:`to_dict` output."""
        rollup = cls()
        rollup.shards = int(payload.get("shards", 0))
        rollup.wall_ns = int(payload.get("wall_ns", 0))
        rollup.cpu_user_s = float(payload.get("cpu_user_s", 0.0))
        rollup.cpu_system_s = float(payload.get("cpu_system_s", 0.0))
        rollup.max_rss_kb = int(payload.get("max_rss_kb", 0))
        rollup.retries = int(payload.get("retries", 0))
        rollup.queue_wait_s = float(payload.get("queue_wait_s", 0.0))
        return rollup

    def render(self) -> str:
        """One human line (fleet report / job listings)."""
        return (f"cpu {self.cpu_user_s:.2f}s user / "
                f"{self.cpu_system_s:.2f}s sys, "
                f"max rss {self.max_rss_kb / 1024.0:.1f} MB, "
                f"shard wall {self.wall_s:.2f}s over {self.shards} shard(s)")


def fold_shard_telemetry(shards: Iterable[Any]) -> Optional[Dict[str, Any]]:
    """Fold ``shard.telemetry`` dicts from shard results into one rollup.

    Duck-typed over :class:`~repro.engine.merge.ShardResult` and
    :class:`~repro.analysis.pipeline.AnalysisShardResult` alike (and
    tolerant of results unpickled from pre-telemetry checkpoints that
    lack the attribute).  Returns None when no shard carried telemetry,
    so reports stay byte-identical when the feature is off.
    """
    rollup = TelemetryRollup()
    for shard in shards:
        payload = getattr(shard, "telemetry", None)
        if payload:
            rollup.add(payload)
    return rollup.to_dict() if rollup.shards else None


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

#: Default ring capacity; small enough to dump over the wire, large
#: enough to hold hours of job-level events.
FLIGHT_CAPACITY = 256

#: File-backed recorders compact the sidecar once it holds this many
#: times the ring capacity in lines.
_FLIGHT_COMPACT_FACTOR = 8


class FlightRecorder:
    """Bounded ring buffer of structured ops events, with overflow count.

    The changedet thesis argument applied to our own daemon: a lossless
    ops log grows without bound and still tells you nothing when the
    process is killed mid-write, while a bounded ring with honest
    overflow accounting always holds the *recent* story.  ``record``
    appends ``{"seq", "t", "kind", **fields}``; once ``capacity``
    events are held the oldest drops and ``dropped`` increments.

    With a ``path``, every event is also appended to a JSONL sidecar
    (flushed, not fsynced — telemetry must never slow the job path) and
    the constructor reloads the tail, so a SIGKILLed daemon's successor
    still sees the pre-kill events plus its own ``recover``.  The
    sidecar is compacted back to ring contents when it grows past
    ``capacity * 8`` lines, keeping it bounded too.
    """

    def __init__(self, capacity: int = FLIGHT_CAPACITY,
                 path: Optional[Union[str, Path]] = None) -> None:
        if capacity < 1:
            raise ReproError(
                f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self.recorded = 0
        self.dropped = 0
        self._seq = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._file_lines = 0
        if self.path is not None:
            self._reload()

    # -- persistence ----------------------------------------------------------

    def _reload(self) -> None:
        """Load the sidecar tail into the ring (torn last line dropped)."""
        if not self.path.exists():
            return
        events: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a kill: drop, keep reading
                if isinstance(event, dict):
                    events.append(event)
        self._file_lines = len(events)
        for event in events[-self.capacity:]:
            self._ring.append(event)
        self.recorded = len(events)
        self.dropped = max(0, len(events) - self.capacity)
        self._seq = max((int(e.get("seq", 0)) for e in events), default=0)
        if self._file_lines > self.capacity * _FLIGHT_COMPACT_FACTOR:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the sidecar with just the ring contents."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for event in self._ring:
                handle.write(json.dumps(event, sort_keys=True,
                                        separators=(",", ":")) + "\n")
        os.replace(tmp, self.path)
        self._file_lines = len(self._ring)

    def _append_line(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self._file_lines += 1
        if self._file_lines > self.capacity * _FLIGHT_COMPACT_FACTOR:
            self._compact()

    # -- recording ------------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the stored record."""
        self._seq += 1
        event: Dict[str, Any] = {"seq": self._seq,
                                 "t": round(time.time(), 3),
                                 "kind": kind}
        event.update(fields)
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.recorded += 1
        if self.path is not None:
            try:
                self._append_line(event)
            except OSError:
                pass  # a full disk must never take the daemon down
        return event

    # -- introspection --------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Ring contents oldest-first, optionally filtered by kind."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.get("kind") == kind]

    def snapshot(self) -> Dict[str, Any]:
        """The ``flight`` protocol op's payload."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": list(self._ring),
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ---------------------------------------------------------------------------

def prometheus_name(name: str) -> str:
    """Sanitize a ``layer/metric`` path into a Prometheus metric name."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return "{" + inner + "}"


class _Exposition:
    """Accumulates metric families and renders them grouped.

    The exposition format requires every sample of a family to sit in
    one contiguous block under its ``# TYPE`` line, so samples are
    collected per family and only flattened at :meth:`text` time —
    callers can interleave families freely (service rollup, then
    per-job rollups) without producing an invalid scrape.
    """

    def __init__(self) -> None:
        self._order: List[str] = []
        self._declared: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._samples: Dict[str, List[str]] = {}

    def declare(self, name: str, kind: str, help_text: str = "") -> None:
        seen = self._declared.get(name)
        if seen is not None:
            if seen != kind:
                raise ReproError(
                    f"metric {name} declared as both {seen} and {kind}")
            return
        self._order.append(name)
        self._declared[name] = kind
        if help_text:
            self._help[name] = help_text
        self._samples[name] = []

    def sample(self, name: str, value: Any,
               labels: Optional[Dict[str, str]] = None,
               suffix: str = "") -> None:
        self._samples[name].append(
            f"{name}{suffix}{_labels_text(labels or {})}"
            f" {_format_value(value)}")

    def text(self) -> str:
        lines: List[str] = []
        for name in self._order:
            if name in self._help:
                lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} {self._declared[name]}")
            lines.extend(self._samples[name])
        return "\n".join(lines) + "\n" if lines else ""


def _histogram_family(exposition: _Exposition, name: str,
                      summary: Dict[str, Any]) -> None:
    """One log-bucketed summary as a Prometheus histogram family."""
    from repro.obs.metrics import bucket_bounds

    exposition.declare(name, "histogram")
    cumulative = 0
    buckets = summary.get("buckets") or {}
    for index in sorted(buckets, key=int):
        cumulative += int(buckets[index])
        upper = bucket_bounds(int(index))[1]
        exposition.sample(name, cumulative, {"le": str(upper)},
                          suffix="_bucket")
    exposition.sample(name, int(summary.get("count") or 0),
                      {"le": "+Inf"}, suffix="_bucket")
    exposition.sample(name, int(summary.get("sum") or 0), suffix="_sum")
    exposition.sample(name, int(summary.get("count") or 0), suffix="_count")


def _rollup_family(exposition: _Exposition, rollup: Dict[str, Any],
                   labels: Dict[str, str]) -> None:
    """One telemetry rollup as CPU/RSS/wall sample families."""
    exposition.declare("repro_telemetry_shards_total", "counter",
                       "Shards with telemetry folded into this rollup")
    exposition.sample("repro_telemetry_shards_total",
                      int(rollup.get("shards", 0)), labels)
    exposition.declare("repro_telemetry_cpu_seconds_total", "counter",
                       "Shard CPU seconds by mode")
    for mode, key in (("user", "cpu_user_s"), ("system", "cpu_system_s")):
        exposition.sample("repro_telemetry_cpu_seconds_total",
                          float(rollup.get(key, 0.0)),
                          dict(labels, mode=mode))
    exposition.declare("repro_telemetry_wall_seconds_total", "counter",
                       "Summed shard wall-clock seconds")
    exposition.sample("repro_telemetry_wall_seconds_total",
                      int(rollup.get("wall_ns", 0)) / 1e9, labels)
    exposition.declare("repro_telemetry_max_rss_kilobytes", "gauge",
                       "Worker resident-set high-water mark")
    exposition.sample("repro_telemetry_max_rss_kilobytes",
                      int(rollup.get("max_rss_kb", 0)), labels)
    exposition.declare("repro_telemetry_retries_total", "counter",
                       "Shard attempts beyond the first")
    exposition.sample("repro_telemetry_retries_total",
                      int(rollup.get("retries", 0)), labels)


def render_prometheus(snapshot: Optional[Dict[str, Any]] = None,
                      rollup: Optional[Dict[str, Any]] = None,
                      job_rollups: Optional[Dict[str, Dict[str, Any]]] = None,
                      gauges: Optional[Dict[str, Any]] = None) -> str:
    """Render exposition text from a metrics snapshot plus telemetry.

    ``snapshot`` is a :class:`~repro.obs.metrics.MetricsRegistry`
    snapshot (counters become ``repro_<name>_total``, gauges keep their
    name, histograms expand their log buckets into cumulative ``le``
    buckets).  ``rollup`` is the service-level telemetry fold;
    ``job_rollups`` maps job ids to per-job folds (labelled
    ``scope="job"``).  ``gauges`` are ad-hoc operational gauges
    (uptime, queue depth) rendered as-is.
    """
    exposition = _Exposition()
    snapshot = snapshot or {}
    for name in sorted(snapshot.get("counters", {})):
        metric = prometheus_name(name) + "_total"
        exposition.declare(metric, "counter")
        exposition.sample(metric, snapshot["counters"][name])
    for name in sorted(snapshot.get("gauges", {})):
        metric = prometheus_name(name)
        exposition.declare(metric, "gauge")
        exposition.sample(metric, snapshot["gauges"][name])
    for name in sorted(snapshot.get("histograms", {})):
        _histogram_family(exposition, prometheus_name(name),
                          snapshot["histograms"][name])
    for name in sorted(gauges or {}):
        metric = prometheus_name(name)
        exposition.declare(metric, "gauge")
        exposition.sample(metric, gauges[name])
    if rollup:
        _rollup_family(exposition, rollup, {"scope": "service"})
    for job_id in sorted(job_rollups or {}):
        _rollup_family(exposition, job_rollups[job_id],
                       {"scope": "job", "job": job_id})
    return exposition.text()


def validate_exposition(text: str) -> int:
    """Validate Prometheus exposition syntax; returns the sample count.

    Checks what a scraper would choke on: malformed TYPE lines, samples
    whose family was never declared, unparsable values, and label
    blocks that do not close.  Raises :class:`ReproError` with the
    offending line number; the CI serve-smoke runs every scrape of the
    live daemon through this.
    """
    declared: Dict[str, str] = {}
    samples = 0
    closed: set = set()
    last_family: Optional[str] = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ReproError(
                    f"exposition line {line_number}: bad TYPE line {line!r}")
            if parts[2] in declared:
                raise ReproError(
                    f"exposition line {line_number}: duplicate TYPE "
                    f"for {parts[2]}")
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        name_end = len(line)
        for index, ch in enumerate(line):
            if ch == "{" or ch == " ":
                name_end = index
                break
        name = line[:name_end]
        rest = line[name_end:]
        if rest.startswith("{"):
            close = rest.find("}")
            if close < 0:
                raise ReproError(
                    f"exposition line {line_number}: unclosed label block")
            rest = rest[close + 1:]
        if not name or not (name[0].isalpha() or name[0] in "_:"):
            raise ReproError(
                f"exposition line {line_number}: bad metric name {name!r}")
        family = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                family = name[:-len(suffix)]
                break
        if family not in declared and name not in declared:
            raise ReproError(
                f"exposition line {line_number}: sample {name!r} has no "
                f"TYPE declaration")
        if family != last_family:
            if family in closed:
                raise ReproError(
                    f"exposition line {line_number}: family {family!r} "
                    f"samples are not contiguous")
            if last_family is not None:
                closed.add(last_family)
            last_family = family
        try:
            float(rest.split()[0])
        except (IndexError, ValueError) as exc:
            raise ReproError(
                f"exposition line {line_number}: bad sample value "
                f"in {line!r}") from exc
        samples += 1
    return samples


# ---------------------------------------------------------------------------
# shard profiling (cProfile merge)
# ---------------------------------------------------------------------------

def profile_blob(profiler) -> bytes:
    """Serialize one worker's cProfile run for the result side channel.

    The marshaled ``pstats`` table — the same payload
    ``Profile.dump_stats`` writes — shipped as bytes so it rides the
    result queue next to the shard result instead of needing a shared
    filesystem path per worker.
    """
    profiler.create_stats()
    return marshal.dumps(profiler.stats)


def merged_hotspots(blobs: Iterable[bytes], top: int = 25) -> str:
    """Merge profile blobs into one deterministically ordered table.

    Entries are keyed by ``basename:line(function)`` (paths stripped so
    the table is stable across checkouts), call counts and times sum
    across shards, and rows sort by cumulative time with the key as the
    tie-break — the ordering is a pure function of the merged data.
    """
    merged: Dict[str, List[float]] = {}
    blob_count = 0
    for blob in blobs:
        blob_count += 1
        try:
            table = marshal.loads(blob)
        except (ValueError, EOFError, TypeError) as exc:
            raise ReproError(f"unreadable profile blob: {exc}") from exc
        for (filename, line, function), row in table.items():
            cc, nc, tt, ct = row[0], row[1], row[2], row[3]
            key = f"{os.path.basename(filename)}:{line}({function})"
            entry = merged.setdefault(key, [0, 0, 0.0, 0.0])
            entry[0] += cc
            entry[1] += nc
            entry[2] += tt
            entry[3] += ct
    rows = sorted(merged.items(),
                  key=lambda item: (-item[1][3], item[0]))
    lines = [
        f"merged shard profile: {blob_count} shard profile(s), "
        f"{len(merged)} function(s), top {min(top, len(rows))} "
        f"by cumulative time",
        f"{'ncalls':>12s} {'tottime':>10s} {'cumtime':>10s}  function",
    ]
    for key, (cc, nc, tt, ct) in rows[:top]:
        ncalls = str(nc) if nc == cc else f"{nc}/{cc}"
        lines.append(f"{ncalls:>12s} {tt:>10.3f} {ct:>10.3f}  {key}")
    return "\n".join(lines)


def write_hotspots(path: Union[str, Path], blobs: Iterable[bytes],
                   top: int = 25) -> Path:
    """Write :func:`merged_hotspots` output to ``path`` (dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(merged_hotspots(blobs, top=top) + "\n", encoding="utf-8")
    return path
