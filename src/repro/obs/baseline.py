"""Perf-baseline files and the wall-clock regression gate.

``tools/bench.py`` times the reference fleet and persists the result
as a ``BENCH_*.json`` baseline (canonical JSON: sorted keys, fixed
indent).  A later run loads the baseline and passes through
:func:`regression_gate`, which fails when the measured wall clock
regressed by more than the threshold — the ROADMAP's "fast as the
hardware allows" goal turned into a checkable floor.

Wall-clock readings are inherently machine- and load-dependent, so the
gate compares best-of-N runs (the least noisy point estimate), takes a
configurable relative threshold, and is wired into CI as a
*non-blocking* report job: a regression prints loudly and uploads its
evidence instead of turning the build red from a noisy runner.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List

from repro.errors import ReproError

#: Baseline schema version (bump on incompatible field changes).
BASELINE_VERSION = 1


@dataclass
class BenchBaseline:
    """One committed benchmark measurement of the reference fleet."""

    name: str
    installs: int
    shards: int
    backend: str
    repeats: int
    wall_seconds: float  # best (minimum) of the repeats
    throughput: float  # installs per wall-clock second at the best run
    runs: List[float] = field(default_factory=list)  # every repeat
    meta: Dict[str, object] = field(default_factory=dict)
    version: int = BASELINE_VERSION

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, indent 2, trailing newline)."""
        return json.dumps(asdict(self), sort_keys=True, indent=2) + "\n"


def save_baseline(path: str, baseline: BenchBaseline) -> None:
    """Write ``baseline`` to ``path`` as canonical JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(baseline.to_json())


def load_baseline(path: str) -> BenchBaseline:
    """Load and validate a ``BENCH_*.json`` baseline file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: invalid baseline JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: baseline must be a JSON object")
    required = ("name", "installs", "shards", "backend", "repeats",
                "wall_seconds", "throughput")
    missing = [key for key in required if key not in payload]
    if missing:
        raise ReproError(f"{path}: baseline missing field(s) {missing}")
    if payload.get("wall_seconds", 0) <= 0:
        raise ReproError(f"{path}: baseline wall_seconds must be > 0")
    known = {f for f in BenchBaseline.__dataclass_fields__}
    return BenchBaseline(**{key: value for key, value in payload.items()
                            if key in known})


@dataclass
class GateResult:
    """Outcome of comparing a measurement against a baseline."""

    ok: bool
    baseline_wall: float
    current_wall: float
    threshold: float  # relative slowdown that fails, e.g. 0.10
    ratio: float  # current / baseline

    @property
    def slowdown(self) -> float:
        """Relative change, positive = slower than baseline."""
        return self.ratio - 1.0

    def render(self, name: str = "fleet") -> str:
        """One-paragraph report of the gate decision."""
        verdict = "OK" if self.ok else "REGRESSION"
        return (
            f"bench gate [{name}]: {verdict}\n"
            f"  baseline : {self.baseline_wall:.3f}s\n"
            f"  current  : {self.current_wall:.3f}s\n"
            f"  change   : {self.slowdown * 100.0:+.1f}% "
            f"(fails above +{self.threshold * 100.0:.1f}%)"
        )


def regression_gate(baseline: BenchBaseline, current_wall: float,
                    threshold: float = 0.10) -> GateResult:
    """Fail when ``current_wall`` regressed past the threshold.

    ``threshold`` is the tolerated relative slowdown: 0.10 passes
    anything up to 10% slower than the baseline (speedups always
    pass).  Raises :class:`ReproError` on nonsensical inputs.
    """
    if threshold < 0:
        raise ReproError(f"threshold must be >= 0, got {threshold}")
    if current_wall <= 0:
        raise ReproError(f"current wall clock must be > 0, got {current_wall}")
    ratio = current_wall / baseline.wall_seconds
    return GateResult(
        ok=ratio <= 1.0 + threshold,
        baseline_wall=baseline.wall_seconds,
        current_wall=current_wall,
        threshold=threshold,
        ratio=ratio,
    )
