"""Observability: tracing, metrics, and trace forensics for the stack.

Six pieces, threaded through the simulator, the core scenario layer,
the defenses and the fleet engine:

- :mod:`repro.obs.trace` — span/event recording keyed on *simulated*
  time, with a zero-overhead :data:`NULL_RECORDER` default,
- :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  deterministic, mergeable snapshots; histograms are log-bucketed so
  p50/p90/p99 estimates survive the shard merge,
- :mod:`repro.obs.export` — canonical JSONL trace export, streaming
  re-load, and text summaries (the ``--trace``/``--metrics`` flags),
- :mod:`repro.obs.analyze` — trace forensics over the exported
  records: latency profiles, span trees and critical paths, the
  armed→strike race-window distribution split by hijack outcome, and
  structural trace diffing (the ``repro trace`` CLI family),
- :mod:`repro.obs.baseline` — ``BENCH_*.json`` perf baselines and the
  wall-clock regression gate behind ``tools/bench.py``,
- :mod:`repro.obs.runtime` — the wall-clock plane: per-shard
  rusage/RSS telemetry with associative rollups, the daemon flight
  recorder, Prometheus text exposition, and merged shard profiling.

The determinism contract of :mod:`repro.engine` extends here: for a
fixed seed, a shard's exported trace is byte-identical across runs,
worker counts and backends; per-shard metric snapshots merged in shard
order are bit-identical; and every analysis renderer is a pure
function of the records, so its report is byte-identical too.
"""

from repro.obs.analyze import (
    NameProfile,
    PathStep,
    RecordDelta,
    SpanNode,
    TraceDiff,
    TraceProfile,
    WindowReport,
    WindowStats,
    build_span_trees,
    critical_path,
    diff_traces,
    layer_of,
    profile_trace,
    render_critical_path,
    render_diff,
    render_profile,
    render_windows,
    validate_records,
    window_forensics,
)
from repro.obs.baseline import (
    BenchBaseline,
    GateResult,
    load_baseline,
    regression_gate,
    save_baseline,
)
from repro.obs.export import (
    iter_trace_jsonl,
    load_trace_jsonl,
    render_metrics,
    render_trace_summary,
    trace_to_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
    empty_snapshot,
    merge_snapshots,
    snapshot_names,
    summary_percentile,
    summary_percentiles,
)
from repro.obs.runtime import (
    FlightRecorder,
    ShardTelemetry,
    TelemetryProbe,
    TelemetryRollup,
    fold_shard_telemetry,
    host_metadata,
    merged_hotspots,
    profile_blob,
    prometheus_name,
    render_prometheus,
    telemetry_available,
    validate_exposition,
    write_hotspots,
)
from repro.obs.trace import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = [
    "NULL_RECORDER",
    "BenchBaseline",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "GateResult",
    "Histogram",
    "MetricsRegistry",
    "NameProfile",
    "NullRecorder",
    "PathStep",
    "RecordDelta",
    "ShardTelemetry",
    "SpanNode",
    "TelemetryProbe",
    "TelemetryRollup",
    "TraceDiff",
    "TraceProfile",
    "TraceRecorder",
    "WindowReport",
    "WindowStats",
    "bucket_bounds",
    "bucket_index",
    "build_span_trees",
    "critical_path",
    "diff_traces",
    "empty_snapshot",
    "fold_shard_telemetry",
    "host_metadata",
    "iter_trace_jsonl",
    "layer_of",
    "load_baseline",
    "load_trace_jsonl",
    "merge_snapshots",
    "merged_hotspots",
    "profile_blob",
    "profile_trace",
    "prometheus_name",
    "regression_gate",
    "render_critical_path",
    "render_diff",
    "render_metrics",
    "render_profile",
    "render_prometheus",
    "render_trace_summary",
    "render_windows",
    "save_baseline",
    "snapshot_names",
    "summary_percentile",
    "summary_percentiles",
    "telemetry_available",
    "trace_to_jsonl",
    "validate_exposition",
    "validate_records",
    "window_forensics",
    "write_hotspots",
    "write_trace_jsonl",
]
