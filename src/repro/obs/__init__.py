"""Observability: structured tracing and metrics for the whole stack.

Three pieces, threaded through the simulator, the core scenario layer,
the defenses and the fleet engine:

- :mod:`repro.obs.trace` — span/event recording keyed on *simulated*
  time, with a zero-overhead :data:`NULL_RECORDER` default,
- :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  deterministic, mergeable snapshots (wall-clock never enters a metric
  value; timing is reported beside them),
- :mod:`repro.obs.export` — canonical JSONL trace export plus text
  summaries (the ``--trace``/``--metrics`` CLI flags).

The determinism contract of :mod:`repro.engine` extends here: for a
fixed seed, a shard's exported trace is byte-identical across runs,
worker counts and backends, and per-shard metric snapshots merged in
shard order are bit-identical.
"""

from repro.obs.export import (
    load_trace_jsonl,
    render_metrics,
    render_trace_summary,
    trace_to_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    snapshot_names,
)
from repro.obs.trace import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = [
    "NULL_RECORDER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "TraceRecorder",
    "empty_snapshot",
    "load_trace_jsonl",
    "merge_snapshots",
    "render_metrics",
    "render_trace_summary",
    "snapshot_names",
    "trace_to_jsonl",
    "write_trace_jsonl",
]
