"""Structured trace recording keyed on *simulated* time.

A recorder collects two kinds of records:

- **events** — something happened at one instant of simulated time
  (a defense decision, an attack strike, an install outcome),
- **spans** — something occupied an interval of simulated time (an
  AIT step, a kernel process lifetime, an attack arm/strike window).

Records hold only simulated-time integers and plain JSON-compatible
attributes, never wall-clock readings, so the trace of a fixed seed is
byte-identical across runs, worker counts and backends — the same
determinism contract :mod:`repro.engine` gives for merged stats.
Wall-clock timing stays beside the trace (in
:class:`~repro.engine.merge.ShardResult` / ``FleetReport`` fields),
exactly like :mod:`repro.engine.merge` treats statistics.

The default recorder everywhere is the :data:`NULL_RECORDER` singleton:
every hook is a no-op and ``enabled`` is ``False``, so hot paths guard
with ``if recorder.enabled:`` and pay one attribute check when
observability is off.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Record-type tags used in exported JSONL.
SPAN = "span"
EVENT = "event"


class NullRecorder:
    """Zero-overhead default recorder: records nothing.

    ``enabled`` is ``False`` so instrumentation sites can skip even the
    cost of building attribute dictionaries.
    """

    __slots__ = ()

    enabled = False

    def event(self, name: str, time_ns: int, **attrs: Any) -> None:
        """Discard an instant event."""

    def span(self, name: str, start_ns: int, end_ns: int,
             **attrs: Any) -> None:
        """Discard a closed span."""

    def records(self) -> List[Dict[str, Any]]:
        """A ``NullRecorder`` never holds records."""
        return []

    def __repr__(self) -> str:
        return "NullRecorder()"


#: Shared process-wide no-op recorder (stateless, safe to share).
NULL_RECORDER = NullRecorder()


class TraceRecorder(NullRecorder):
    """Collects span/event records in emission order.

    Emission order is itself deterministic (the simulator dispatches
    events in a fixed order for a fixed seed), so ``records()`` — and
    therefore the JSONL export — is reproducible byte for byte.
    """

    __slots__ = ("_records",)

    enabled = True

    def __init__(self) -> None:
        self._records: List[Dict[str, Any]] = []

    def event(self, name: str, time_ns: int, **attrs: Any) -> None:
        """Record an instant event at simulated time ``time_ns``."""
        record: Dict[str, Any] = {"type": EVENT, "name": name,
                                  "t_ns": int(time_ns)}
        if attrs:
            record["attrs"] = attrs
        self._records.append(record)

    def span(self, name: str, start_ns: int, end_ns: int,
             **attrs: Any) -> None:
        """Record a closed span over ``[start_ns, end_ns]``."""
        record: Dict[str, Any] = {"type": SPAN, "name": name,
                                  "start_ns": int(start_ns),
                                  "end_ns": int(end_ns)}
        if attrs:
            record["attrs"] = attrs
        self._records.append(record)

    def records(self) -> List[Dict[str, Any]]:
        """All records in emission order (plain dicts, picklable)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"TraceRecorder({len(self._records)} records)"
