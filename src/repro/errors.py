"""Exception hierarchy for the GIA reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the Android-substrate errors (filesystem,
permissions, package manager) that mirror real Android failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is used incorrectly."""


class DeadlockError(SimulationError):
    """Raised when the kernel runs out of events while processes wait."""


# ---------------------------------------------------------------------------
# Filesystem errors. These intentionally mirror errno semantics so that the
# simulated Android components can react the way real code reacts to the
# corresponding POSIX failures.
# ---------------------------------------------------------------------------


class FilesystemError(ReproError):
    """Base class for errors raised by the in-memory VFS."""

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{message}: {path}")
        self.path = path


class FileNotFound(FilesystemError):
    """ENOENT: the path does not resolve to an existing node."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "no such file or directory")


class FileExists(FilesystemError):
    """EEXIST: exclusive creation hit an existing node."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "file exists")


class NotADirectory(FilesystemError):
    """ENOTDIR: a non-directory appeared in the middle of a path."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "not a directory")


class IsADirectory(FilesystemError):
    """EISDIR: a file operation was attempted on a directory."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "is a directory")


class AccessDenied(FilesystemError):
    """EACCES/EPERM: the caller may not perform the operation."""

    def __init__(self, path: str, reason: str = "permission denied") -> None:
        super().__init__(path, reason)


class StorageFull(FilesystemError):
    """ENOSPC: the backing volume has no room for the write."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "no space left on device")


class SymlinkLoop(FilesystemError):
    """ELOOP: too many levels of symbolic links."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "too many levels of symbolic links")


# ---------------------------------------------------------------------------
# Android-framework errors.
# ---------------------------------------------------------------------------


class AndroidError(ReproError):
    """Base class for simulated Android framework errors."""


class SecurityException(AndroidError):
    """Mirror of ``java.lang.SecurityException``: a permission check failed."""


class PermissionUnknown(AndroidError):
    """A permission name was referenced but never defined on the device."""


class InstallError(AndroidError):
    """Base class for Package Manager installation failures."""

    failure_code = "INSTALL_FAILED"


class InstallVerificationError(InstallError):
    """The integrity verification step rejected the package."""

    failure_code = "INSTALL_FAILED_VERIFICATION_FAILURE"


class InstallSignatureError(InstallError):
    """An update's certificate differs from the installed package's."""

    failure_code = "INSTALL_FAILED_UPDATE_INCOMPATIBLE"


class InstallStorageError(InstallError):
    """There is not enough internal storage to complete the install."""

    failure_code = "INSTALL_FAILED_INSUFFICIENT_STORAGE"


class InstallAbortedError(InstallError):
    """The user declined the consent dialog, or the installer aborted."""

    failure_code = "INSTALL_FAILED_ABORTED"


class PackageNotFound(AndroidError):
    """A package name was queried but is not installed."""


class DownloadError(AndroidError):
    """Base class for Download Manager failures."""


class DownloadDestinationError(DownloadError):
    """The requested destination is not authorized for the caller."""


class ActivityNotFound(AndroidError):
    """No activity resolves the given Intent."""


class CorpusError(ReproError):
    """Raised when the synthetic corpus generator is misconfigured."""


class SmaliParseError(ReproError):
    """Raised when the smali-like IR cannot be parsed."""
