"""Progress and throughput reporting hooks for the fleet engine.

The executor drives a :class:`FleetProgress` from the parent process as
shard results arrive (worker processes never print).  Subclass and
override what you need; every hook has a no-op default, so a partial
observer is fine.
"""

from __future__ import annotations

import sys
import time
from typing import IO, TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.engine.merge import FleetReport, ShardResult
    from repro.engine.spec import CampaignSpec, ShardSpec


class FleetProgress:
    """Observer interface for one engine run (all hooks optional)."""

    def on_fleet_start(self, spec: "CampaignSpec", shard_count: int,
                       workers: int, backend: str) -> None:
        """The executor resolved its backend and is about to launch."""

    def on_shard_start(self, shard: "ShardSpec", attempt: int) -> None:
        """A shard (re)starts; ``attempt`` is 1-based."""

    def on_shard_done(self, result: "ShardResult", done: int,
                      total: int) -> None:
        """A shard finished; ``done`` of ``total`` shards are complete."""

    def on_shard_retry(self, shard: "ShardSpec", attempt: int,
                       reason: str) -> None:
        """A shard attempt failed (crash/timeout/error) and will retry."""

    def on_fleet_done(self, report: "FleetReport") -> None:
        """All shards merged; the report is final."""


class NullProgress(FleetProgress):
    """Silent default."""


class TeeProgress(FleetProgress):
    """Broadcast every hook to several observers in order."""

    def __init__(self, *observers: FleetProgress) -> None:
        self.observers = list(observers)

    def on_fleet_start(self, spec, shard_count, workers, backend) -> None:
        for observer in self.observers:
            observer.on_fleet_start(spec, shard_count, workers, backend)

    def on_shard_start(self, shard, attempt) -> None:
        for observer in self.observers:
            observer.on_shard_start(shard, attempt)

    def on_shard_done(self, result, done, total) -> None:
        for observer in self.observers:
            observer.on_shard_done(result, done, total)

    def on_shard_retry(self, shard, attempt, reason) -> None:
        for observer in self.observers:
            observer.on_shard_retry(shard, attempt, reason)

    def on_fleet_done(self, report) -> None:
        for observer in self.observers:
            observer.on_fleet_done(report)


class MetricsProgress(FleetProgress):
    """Engine-side throughput/fault accounting.

    Everything here derives from wall-clock scheduling (per-shard
    throughput, retries observed), so it is reported *beside* the
    deterministic :mod:`repro.obs` snapshots, mirroring how
    :class:`~repro.engine.merge.FleetReport` separates the two planes.
    """

    def __init__(self) -> None:
        self.shards_started = 0
        self.shards_done = 0
        self.retries = 0
        self.throughputs: list = []  # installs/s per finished shard
        self.telemetry = None  # TelemetryRollup once a result carries one

    def on_shard_start(self, shard, attempt) -> None:
        self.shards_started += 1

    def on_shard_done(self, result, done, total) -> None:
        self.shards_done += 1
        if result.wall_seconds > 0:
            self.throughputs.append(result.stats.runs / result.wall_seconds)
        payload = getattr(result, "telemetry", None)
        if payload:
            if self.telemetry is None:
                from repro.obs.runtime import TelemetryRollup

                self.telemetry = TelemetryRollup()
            self.telemetry.add(payload)

    def on_shard_retry(self, shard, attempt, reason) -> None:
        self.retries += 1
        if self.telemetry is not None:
            self.telemetry.retries += 1

    def render(self) -> str:
        """One-line engine summary (wall-clock plane)."""
        if self.throughputs:
            lo = min(self.throughputs)
            hi = max(self.throughputs)
            mean = sum(self.throughputs) / len(self.throughputs)
            shard_rate = (f"shard installs/s min {lo:.0f} / "
                          f"mean {mean:.0f} / max {hi:.0f}")
        else:
            shard_rate = "no shard throughput recorded"
        line = (f"engine: {self.shards_started} shard start(s), "
                f"{self.shards_done} done, {self.retries} retried; "
                f"{shard_rate}")
        if self.telemetry is not None:
            line += f"\nengine: telemetry {self.telemetry.render()}"
        return line


class ConsoleProgress(FleetProgress):
    """Line-per-event progress with running throughput."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._started_at = 0.0
        self._runs_done = 0

    def _emit(self, message: str) -> None:
        print(message, file=self.stream, flush=True)

    def on_fleet_start(self, spec: "CampaignSpec", shard_count: int,
                       workers: int, backend: str) -> None:
        self._started_at = time.perf_counter()
        self._runs_done = 0
        self._emit(
            f"[fleet] {spec.installs} installs -> {shard_count} shard(s) "
            f"on {workers} {backend} worker(s)")

    def on_shard_done(self, result: "ShardResult", done: int,
                      total: int) -> None:
        self._runs_done += result.stats.runs
        elapsed = max(time.perf_counter() - self._started_at, 1e-9)
        self._emit(
            f"[fleet] shard {result.shard_index} done "
            f"({result.stats.runs} installs in {result.wall_seconds:.2f}s) "
            f"— {done}/{total} shards, "
            f"{self._runs_done / elapsed:.0f} installs/s overall")

    def on_shard_retry(self, shard: "ShardSpec", attempt: int,
                       reason: str) -> None:
        self._emit(
            f"[fleet] shard {shard.index} attempt {attempt} failed "
            f"({reason}); retrying")

    def on_fleet_done(self, report: "FleetReport") -> None:
        self._emit(
            f"[fleet] done: {report.stats.runs} installs in "
            f"{report.wall_seconds:.2f}s ({report.throughput:.0f} installs/s)")
