"""Fleet executor: run campaign shards across a worker pool.

The process backend is a small explicit scheduler over
``multiprocessing.Process`` workers rather than a ``Pool``: a pool
loses the task (and may hang the caller) when a worker dies abruptly,
while the whole point here is precise per-shard crash/timeout
semantics — a shard whose worker crashes or overruns its deadline is
retried a bounded number of times, then degraded to the in-process
serial backend, which is also the fleet-wide fallback when
``multiprocessing`` itself is unavailable (restricted sandboxes).

Two pool flavours share that scheduler shape:

- the **cold pool** (default) forks one process per shard attempt and
  lets it exit — simple, and the right call for one-shot CLI runs;
- the **warm pool** (``FleetExecutor(warm=True)``, used by the
  ``repro serve`` daemon) keeps a fixed set of resident workers alive
  across campaigns, so fork/import/artifact-cache warm-up is paid once
  per worker instead of once per shard.  Crashed or timed-out warm
  workers are restarted in place and the shard is retried exactly like
  the cold pool's semantics.

Results merge in shard-index order regardless of completion order, so
the merged stats honour the determinism contract of
:mod:`repro.engine.spec` for any worker count — and, with a
checkpoint journal attached, for any resume point: restored shard
results are byte-for-byte the ones the interrupted run recorded.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.core.campaign import Campaign, CampaignStats
from repro.engine.merge import FleetReport, ShardResult
from repro.engine.progress import FleetProgress, NullProgress
from repro.engine.spec import CampaignSpec, ShardSpec, parse_chaos
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder

_OK = "ok"
_ERROR = "error"
_CRASH = "crash"
_TIMEOUT = "timeout"
#: Maps a failure status to its executor fault counter.
_FAULT_KINDS = {_ERROR: "errors", _CRASH: "crashes", _TIMEOUT: "timeouts"}
#: Ceiling on one blocking wait in the pool loop.  The loop does not
#: poll at this cadence — results and worker deaths interrupt the wait
#: immediately (see :func:`wait_for_result`); the ceiling only bounds
#: how stale the timeout bookkeeping in ``_reap`` can get.
_IDLE_WAIT_SECONDS = 0.5

BACKENDS = ("auto", "process", "serial")


def default_workers() -> int:
    """Worker-count default: the machine's cores, capped at 4."""
    return max(1, min(4, os.cpu_count() or 1))


def run_shard(shard: ShardSpec, telemetry: bool = False,
              profile: bool = False) -> ShardResult:
    """Execute one shard in this process (the serial backend's unit).

    With ``telemetry=True`` the execution is bracketed by a
    :class:`repro.obs.runtime.TelemetryProbe` (rusage + perf_counter_ns)
    and the result carries a ``telemetry`` payload on the wall-clock
    side channel; with ``profile=True`` it additionally runs under
    cProfile and carries the marshaled profile blob.  Both default off,
    and the disabled path makes zero extra clock/rusage calls (pinned
    by ``tests/engine/test_telemetry.py``).  Neither ever touches the
    shard's deterministic stats/trace/metrics.
    """
    if not (telemetry or profile):
        return _execute_shard(shard)
    probe = None
    profiler = None
    if telemetry:
        from repro.obs.runtime import TelemetryProbe

        probe = TelemetryProbe.start()
    if profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        result = _execute_shard(shard)
    finally:
        if profiler is not None:
            profiler.disable()
    if probe is not None:
        result.telemetry = probe.finish(shard.index).to_dict()
    if profiler is not None:
        from repro.obs.runtime import profile_blob

        result.profile = profile_blob(profiler)
    return result


def _execute_shard(shard: ShardSpec) -> ShardResult:
    """The untelemetered core of :func:`run_shard`.

    Provisions a fresh device from the shard spec, publishes the
    shard's slice of the global workload, runs the installs, and
    returns compacted (picklable, trace-free) stats.  When the
    campaign spec has ``observe=True`` the shard also carries its
    trace records and metrics snapshot (simulated-time only, so both
    are deterministic for a fixed shard spec).
    """
    execute = getattr(shard, "execute", None)
    if execute is not None:
        # Self-executing workload (e.g. repro.analysis.pipeline shards):
        # the spec knows how to run its own slice; the executor supplies
        # only pooling, retries, chaos and merge.
        return execute()
    started = time.perf_counter()
    spec = shard.campaign
    recorder = TraceRecorder() if spec.observe else None
    metrics = MetricsRegistry() if spec.observe else None
    scenario = shard.build_scenario(recorder=recorder, metrics=metrics)
    packages = shard.publish_workload(scenario)
    # Compact at record time: outcomes are projected to trace-free
    # OutcomeRecord as they happen, so the shard never accumulates
    # transaction traces only to strip them post-hoc.
    campaign = Campaign(scenario, stats=CampaignStats(
        compact=True, keep_outcomes=spec.keep_outcomes))
    campaign.install_many(
        packages,
        arm_attacker=spec.arm_attacker,
        rearm_between=spec.rearm_between,
    )
    return ShardResult(
        shard_index=shard.index,
        start=shard.start,
        stop=shard.stop,
        stats=campaign.stats,
        wall_seconds=time.perf_counter() - started,
        backend="serial",
        trace=recorder.records() if recorder is not None else None,
        metrics=metrics.snapshot() if metrics is not None else None,
    )


def _chaos_indices(spec: CampaignSpec, mode: str) -> Set[int]:
    chaos_mode, indices = parse_chaos(spec.chaos)
    if chaos_mode != mode:
        return set()
    return set(indices)


def _shard_entry(result_queue, shard: ShardSpec, telemetry: bool = False,
                 profile: bool = False) -> None:
    """Worker-process entry point.

    Failure injection (``spec.chaos``) lives here on purpose: only
    pool workers honour it, so the serial fallback always recovers.
    """
    try:
        if shard.index in _chaos_indices(shard.campaign, "crash"):
            os._exit(13)
        if shard.index in _chaos_indices(shard.campaign, "hang"):
            time.sleep(3600)
        if shard.index in _chaos_indices(shard.campaign, "error"):
            raise RuntimeError(f"injected error in shard {shard.index}")
        result = run_shard(shard, telemetry=telemetry, profile=profile)
        result.backend = "process"
        result_queue.put((shard.index, _OK, result))
    except BaseException as exc:  # pragma: no cover - depends on failure mode
        try:
            result_queue.put(
                (shard.index, _ERROR, f"{type(exc).__name__}: {exc}"))
        except Exception:
            os._exit(14)


def wait_for_result(result_queue, processes=(),
                    timeout: float = _IDLE_WAIT_SECONDS) -> bool:
    """Block until the result queue has data, a worker exits, or timeout.

    The scheduler's replacement for fixed-interval polling: it sleeps
    on the queue's underlying pipe and every worker's death sentinel at
    once (:func:`multiprocessing.connection.wait`), so a finished shard
    or a crashed worker wakes the parent immediately instead of after
    the next poll tick.  Returns True when the queue signalled readable
    (a ``get`` should now return promptly); False on a sentinel wake or
    timeout.  Queues without an inspectable pipe conservatively return
    True, degrading to the caller's timed ``get``.
    """
    reader = getattr(result_queue, "_reader", None)
    if reader is None:  # unexpected queue implementation
        return True
    from multiprocessing.connection import wait as connection_wait

    sentinels = [reader]
    for process in processes:
        sentinel = getattr(process, "sentinel", None)
        if sentinel is not None:
            sentinels.append(sentinel)
    try:
        ready = connection_wait(sentinels, timeout)
    except OSError:  # a sentinel closed under us: treat as a wake
        return True
    return reader in ready


def drain_queue(result_queue, handle: Callable[[object], None],
                timeout: float = _IDLE_WAIT_SECONDS) -> int:
    """Feed every queued message to ``handle``; return how many.

    The scheduler's drain step, shared by the cold pool, the warm pool
    and the serve daemon's scheduler: block up to ``timeout`` for the
    first message, then sweep whatever else is already queued without
    blocking again.  Pairs with :func:`wait_for_result` — wait on the
    pipe and the worker sentinels, then drain — so a burst of shard
    completions is handled in one pass while a worker death never
    leaves the caller stuck in a blocking ``get``.
    """
    handled = 0
    block = timeout
    while True:
        try:
            message = result_queue.get(timeout=block)
        except queue_module.Empty:
            return handled
        handle(message)
        handled += 1
        block = 0.0


def multiprocessing_usable() -> bool:
    """Can this environment create process pools at all?

    Creating a queue exercises the semaphores and pipes that
    restricted sandboxes typically forbid.
    """
    try:
        import multiprocessing

        context = multiprocessing.get_context()
        probe = context.Queue()
        probe.close()
        probe.join_thread()
        return True
    except (ImportError, OSError, PermissionError):
        return False


def _warm_worker_entry(slot: int, task_queue, result_queue) -> None:
    """Resident worker loop: run shards until a ``None`` sentinel.

    Mirrors :func:`_shard_entry` (including chaos injection — only
    pool workers honour it, so the serial fallback always recovers)
    but stays alive between tasks: module imports and the
    content-addressed artifact caches built by earlier shards carry
    over to later ones, which is the whole point of the warm pool.
    Messages are ``(slot, ticket, status, payload)``.

    A worker orphaned by a hard-killed parent (SIGKILL skips
    :meth:`WarmPool.close`) notices the reparenting on its next idle
    tick and exits instead of blocking on the task queue forever.
    """
    parent = os.getppid()
    while True:
        try:
            task = task_queue.get(timeout=5.0)
        except queue_module.Empty:
            if os.getppid() != parent:
                os._exit(0)  # orphaned: the parent is gone
            continue
        if task is None:
            break
        ticket, shard = task[0], task[1]
        telemetry, profile = task[2] if len(task) > 2 else (False, False)
        try:
            if shard.index in _chaos_indices(shard.campaign, "crash"):
                os._exit(13)
            if shard.index in _chaos_indices(shard.campaign, "hang"):
                time.sleep(3600)
            if shard.index in _chaos_indices(shard.campaign, "error"):
                raise RuntimeError(f"injected error in shard {shard.index}")
            result = run_shard(shard, telemetry=telemetry, profile=profile)
            result.backend = "warm"
            result_queue.put((slot, ticket, _OK, result))
        except BaseException as exc:  # pragma: no cover - failure-mode paths
            try:
                result_queue.put(
                    (slot, ticket, _ERROR, f"{type(exc).__name__}: {exc}"))
            except Exception:
                os._exit(14)


class _WarmWorker:
    """Parent-side handle on one resident worker process."""

    __slots__ = ("slot", "process", "task_queue", "tasks_done")

    def __init__(self, slot: int, process, task_queue) -> None:
        self.slot = slot
        self.process = process
        self.task_queue = task_queue
        self.tasks_done = 0


class WarmPool:
    """A fixed set of resident shard workers, reused across campaigns.

    Workers are forked once and then fed ``(ticket, shard)`` tasks over
    per-worker queues; results come back on one shared queue.  A dead
    worker (crash chaos, OOM, kill) is detected via its process
    sentinel, restarted in place, and its in-flight ticket is reported
    as a crash so the scheduler can retry the shard — ``restarts``
    counts every such replacement (the serve daemon exports it as the
    ``serve/worker_restarts`` metric).  ``close`` shuts the pool down
    deterministically: sentinel every worker, join, terminate
    stragglers — no leaked processes, pinned by the leak-check test.
    """

    def __init__(self, workers: int, context=None) -> None:
        if workers < 1:
            raise ReproError(f"warm pool needs workers >= 1, got {workers}")
        if context is None:
            import multiprocessing

            context = multiprocessing.get_context()
        self._context = context
        self.workers = workers
        self.result_queue = context.Queue()
        self.restarts = 0
        self.tasks_done = 0
        self._closed = False
        self._workers: Dict[int, _WarmWorker] = {}
        self._idle: List[int] = []
        self._running: Dict[int, Tuple[int, float, ShardSpec]] = {}
        for slot in range(workers):
            self._spawn(slot)

    # -- lifecycle -------------------------------------------------------------

    def _spawn(self, slot: int) -> None:
        """(Re)create the worker in ``slot`` with a fresh task queue.

        A fresh queue per incarnation, so a task the dead worker popped
        but never finished cannot resurface in its replacement.
        """
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_warm_worker_entry,
            args=(slot, task_queue, self.result_queue),
            name=f"fleet-warm-{slot}",
            daemon=True,
        )
        process.start()
        self._workers[slot] = _WarmWorker(slot, process, task_queue)
        self._idle.append(slot)

    def _respawn(self, slot: int) -> None:
        if slot in self._idle:
            self._idle.remove(slot)
        self.restarts += 1
        self._spawn(slot)

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down; idempotent, never leaks a process."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            try:
                worker.task_queue.put(None)
            except Exception:  # queue already broken: terminate below
                pass
        deadline = time.monotonic() + timeout
        for worker in self._workers.values():
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join()
            worker.task_queue.close()
        self.result_queue.close()
        self._workers.clear()
        self._idle.clear()
        self._running.clear()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    def has_idle(self) -> bool:
        """Is at least one worker free to take a task?"""
        return bool(self._idle)

    def busy(self) -> bool:
        """Is at least one task in flight?"""
        return bool(self._running)

    def worker_pids(self) -> Dict[int, int]:
        """Slot -> current worker PID (warm reuse is PID stability)."""
        return {slot: worker.process.pid
                for slot, worker in self._workers.items()}

    def earliest_start(self) -> Optional[float]:
        """Monotonic start of the oldest in-flight task, if any."""
        if not self._running:
            return None
        return min(started for _, started, _ in self._running.values())

    # -- scheduling ------------------------------------------------------------

    def submit(self, ticket: int, shard: ShardSpec, telemetry: bool = False,
               profile: bool = False) -> None:
        """Hand ``shard`` to an idle worker under key ``ticket``.

        ``telemetry``/``profile`` ride along as a flags tuple so the
        worker brackets execution with the rusage probe / cProfile
        (see :func:`run_shard`); both default off.
        """
        if self._closed:
            raise ReproError("warm pool is closed")
        if not self._idle:
            raise ReproError("no idle warm worker; poll() first")
        slot = self._idle.pop()
        self._workers[slot].task_queue.put(
            (ticket, shard, (telemetry, profile)))
        self._running[ticket] = (slot, time.monotonic(), shard)

    def poll(self, timeout: float = _IDLE_WAIT_SECONDS
             ) -> List[Tuple[int, str, object]]:
        """Collect finished/failed tickets, restarting dead workers.

        Blocks up to ``timeout`` on the result pipe plus every worker's
        death sentinel (:func:`wait_for_result`), drains whatever
        landed (:func:`drain_queue`), then sweeps for dead workers: an
        in-flight ticket whose worker died without reporting comes back
        as a ``crash`` event and the slot is respawned.  Returns
        ``(ticket, status, payload)`` tuples where status is ``ok``
        (payload: :class:`ShardResult`), ``error`` or ``crash``
        (payload: reason string).
        """
        events: List[Tuple[int, str, object]] = []

        def handle(message) -> None:
            slot, ticket, status, payload = message
            entry = self._running.pop(ticket, None)
            if entry is None:
                return  # stale: ticket already reaped as timeout/crash
            self._idle.append(slot)
            worker = self._workers.get(slot)
            if worker is not None:
                worker.tasks_done += 1
            self.tasks_done += 1
            events.append((ticket, status, payload))

        processes = [w.process for w in self._workers.values()]
        if wait_for_result(self.result_queue, processes, timeout):
            drain_queue(self.result_queue, handle, timeout=_IDLE_WAIT_SECONDS)
        for slot, worker in list(self._workers.items()):
            if worker.process.is_alive():
                continue
            # Its result may still be in flight: one final drain chance
            # before declaring the ticket crashed (mirrors _reap).
            drain_queue(self.result_queue, handle, timeout=0.1)
            dead = [ticket for ticket, (s, _, _) in self._running.items()
                    if s == slot]
            exitcode = worker.process.exitcode
            worker.process.join()
            self._respawn(slot)
            for ticket in dead:
                self._running.pop(ticket)
                events.append(
                    (ticket, _CRASH,
                     f"warm worker died (exit code {exitcode})"))
        return events

    def reap_timeouts(self, shard_timeout: Optional[float]
                      ) -> List[Tuple[int, str, object]]:
        """Terminate workers whose task overran ``shard_timeout``.

        Each overrun worker is restarted and its ticket reported as a
        ``timeout`` event; None disables policing.
        """
        if shard_timeout is None:
            return []
        events: List[Tuple[int, str, object]] = []
        now = time.monotonic()
        for ticket, (slot, started, _) in list(self._running.items()):
            if now - started <= shard_timeout:
                continue
            worker = self._workers[slot]
            worker.process.terminate()
            worker.process.join()
            self._running.pop(ticket)
            self._respawn(slot)
            events.append((ticket, _TIMEOUT,
                           f"timeout after {shard_timeout:.1f}s"))
        return events


class FleetExecutor:
    """Shard a campaign spec, execute the shards, merge the results."""

    def __init__(self, workers: Optional[int] = None, backend: str = "auto",
                 shard_timeout: Optional[float] = None, max_retries: int = 2,
                 progress: Optional[FleetProgress] = None,
                 warm: bool = False, telemetry: bool = False,
                 profile_shards: bool = False) -> None:
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; valid: {BACKENDS}")
        if max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.progress = progress if progress is not None else NullProgress()
        #: Keep a resident :class:`WarmPool` alive across ``run`` calls
        #: (the serve daemon's mode).  The pool is created lazily on the
        #: first pooled run and must be released with :meth:`close`.
        self.warm = warm
        #: Wall-clock plane switches (see :mod:`repro.obs.runtime`):
        #: both default off, and the off path adds zero clock/rusage
        #: calls to shard execution.
        self.telemetry = telemetry
        self.profile_shards = profile_shards
        self._pool: Optional[WarmPool] = None

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the warm pool (if any); idempotent, leak-free.

        Cold pools clean up per run, so this only matters for
        ``warm=True`` executors — but call it (or use the executor as a
        context manager) unconditionally: it makes shutdown
        deterministic for tests and the daemon alike.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> WarmPool:
        if self._pool is None or self._pool.closed:
            self._pool = WarmPool(self.workers)
        return self._pool

    # -- public API -----------------------------------------------------------

    def run(self, spec: CampaignSpec, shards: Optional[int] = None,
            checkpoint=None) -> FleetReport:
        """Run ``spec`` across the pool and return the merged report.

        ``checkpoint`` is an optional shard-completion journal (duck
        typed; see :class:`repro.serve.checkpoint.ShardJournal`): shards
        it has already recorded are restored instead of re-run, and
        every fresh completion is recorded before the fleet moves on —
        so a killed campaign resumes from its last completed shard and
        still merges to bit-identical stats.
        """
        started = time.perf_counter()
        shard_count = shards if shards is not None else self.workers
        shard_specs = spec.shard(shard_count)
        restored: Dict[int, ShardResult] = {}
        if checkpoint is not None:
            restored = checkpoint.restore(spec, len(shard_specs))
        todo = [shard for shard in shard_specs
                if shard.index not in restored]
        backend = self._resolve_backend()
        workers = 1 if backend == "serial" else min(self.workers,
                                                    len(todo) or 1)
        if self.warm and backend == "process":
            # The resident pool keeps its full complement: idle workers
            # stay warm for the next campaign instead of being resized.
            workers = self.workers
        total = len(shard_specs)
        self.progress.on_fleet_start(spec, total, workers, backend)
        counters = {"retries": 0, "timeouts": 0, "crashes": 0,
                    "errors": 0, "fallbacks": 0, "restored": len(restored)}
        results: Dict[int, ShardResult] = {}
        for index in sorted(restored):
            results[index] = restored[index]
            self.progress.on_shard_done(restored[index], len(results), total)
        on_result = None if checkpoint is None else checkpoint.record
        if backend == "serial":
            self._run_serial(todo, results, total, on_result)
        elif self.warm:
            self._run_warm(todo, results, total, counters, on_result)
        else:
            self._run_pool(todo, results, total, counters, on_result)
        report_class = getattr(type(spec), "report_class", None) or FleetReport
        report = report_class.from_shards(
            spec, list(results.values()),
            wall_seconds=time.perf_counter() - started,
            workers=workers, backend=backend,
            counters=counters,
        )
        self.progress.on_fleet_done(report)
        return report

    def _resolve_backend(self) -> str:
        if self.backend == "serial":
            return "serial"
        if self.backend == "auto" and self.workers <= 1:
            return "serial"
        if not multiprocessing_usable():
            # Graceful degradation: both "auto" and an explicit
            # "process" request fall back rather than fail.
            return "serial"
        return "process"

    # -- shared completion plumbing -------------------------------------------

    def _finish(self, result: ShardResult, results: Dict[int, ShardResult],
                total: int, on_result) -> None:
        """Record one completed shard: merge set, checkpoint, progress.

        The checkpoint write comes *before* the progress hook: once a
        shard has been announced as done, it must already be durable,
        or a kill landing right after the announcement would resume
        with fewer shards than an observer was told had finished.
        """
        results[result.shard_index] = result
        if on_result is not None:
            on_result(result)
        self.progress.on_shard_done(result, len(results), total)

    def _run_fallback(self, fallback: List[ShardSpec],
                      attempts: Dict[int, int],
                      results: Dict[int, ShardResult], total: int,
                      counters: Dict[str, int], on_result) -> None:
        """In-process serial rescue of shards the pool gave up on."""
        for shard in fallback:
            counters["fallbacks"] += 1
            attempts[shard.index] += 1
            self.progress.on_shard_start(shard, attempts[shard.index])
            result = run_shard(shard, telemetry=self.telemetry,
                               profile=self.profile_shards)
            result.attempts = attempts[shard.index]
            result.backend = "serial-fallback"
            self._finish(result, results, total, on_result)

    # -- serial backend -------------------------------------------------------

    def _run_serial(self, shard_specs: List[ShardSpec],
                    results: Dict[int, ShardResult], total: int,
                    on_result=None) -> None:
        for shard in shard_specs:
            self.progress.on_shard_start(shard, 1)
            result = run_shard(shard, telemetry=self.telemetry,
                               profile=self.profile_shards)
            self._finish(result, results, total, on_result)

    # -- process backend (cold pool) ------------------------------------------

    def _run_pool(self, shard_specs: List[ShardSpec],
                  results: Dict[int, ShardResult], total: int,
                  counters: Dict[str, int], on_result=None) -> None:
        import multiprocessing

        context = multiprocessing.get_context()
        result_queue = context.Queue()
        pending: Deque[ShardSpec] = deque(shard_specs)
        running: Dict[int, Tuple[object, float, ShardSpec]] = {}
        attempts: Dict[int, int] = {shard.index: 0 for shard in shard_specs}
        fallback: List[ShardSpec] = []
        workers = min(self.workers, len(shard_specs) or 1)

        def handle(message: Tuple[int, str, object]) -> None:
            index, status, payload = message
            if index in results:
                return  # stale message from a timed-out-then-finished worker
            entry = running.pop(index, None)
            if entry is not None:
                entry[0].join()
            if status == _OK:
                payload.attempts = attempts[index]
                self._finish(payload, results, total, on_result)
            else:
                self._retry(pending, fallback, attempts,
                            self._shard_by_index(shard_specs, index),
                            str(payload), counters, "errors")

        def drain(timeout: float) -> int:
            return drain_queue(result_queue, handle, timeout)

        try:
            while pending or running:
                while pending and len(running) < workers:
                    shard = pending.popleft()
                    attempts[shard.index] += 1
                    self.progress.on_shard_start(shard,
                                                 attempts[shard.index])
                    process = context.Process(
                        target=_shard_entry,
                        args=(result_queue, shard, self.telemetry,
                              self.profile_shards),
                        name=f"fleet-shard-{shard.index}",
                        daemon=True,
                    )
                    process.start()
                    running[shard.index] = (process, time.monotonic(), shard)
                if wait_for_result(
                        result_queue,
                        [entry[0] for entry in running.values()],
                        self._wait_timeout(running)):
                    drain(_IDLE_WAIT_SECONDS)
                self._reap(running, pending, fallback, attempts, drain,
                           counters)
        finally:
            for process, _, _ in running.values():
                process.terminate()
                process.join()
            result_queue.close()

        self._run_fallback(fallback, attempts, results, total, counters,
                           on_result)

    # -- process backend (warm pool) ------------------------------------------

    def _run_warm(self, shard_specs: List[ShardSpec],
                  results: Dict[int, ShardResult], total: int,
                  counters: Dict[str, int], on_result=None) -> None:
        """Schedule shards onto the resident pool (created on first use).

        Same retry/timeout/fallback semantics as the cold pool, but
        worker processes survive the run — and the next one.
        """
        pool = self._ensure_pool()
        pending: Deque[ShardSpec] = deque(shard_specs)
        attempts: Dict[int, int] = {shard.index: 0 for shard in shard_specs}
        by_index: Dict[int, ShardSpec] = {shard.index: shard
                                          for shard in shard_specs}
        fallback: List[ShardSpec] = []
        while pending or pool.busy():
            while pending and pool.has_idle():
                shard = pending.popleft()
                attempts[shard.index] += 1
                self.progress.on_shard_start(shard, attempts[shard.index])
                pool.submit(shard.index, shard, telemetry=self.telemetry,
                            profile=self.profile_shards)
            events = pool.poll(self._warm_wait_timeout(pool))
            events += pool.reap_timeouts(self.shard_timeout)
            for ticket, status, payload in events:
                if status == _OK:
                    payload.attempts = attempts[ticket]
                    self._finish(payload, results, total, on_result)
                else:
                    self._retry(pending, fallback, attempts,
                                by_index[ticket], str(payload), counters,
                                _FAULT_KINDS[status])
        self._run_fallback(fallback, attempts, results, total, counters,
                           on_result)

    def _warm_wait_timeout(self, pool: WarmPool) -> float:
        """Warm-pool analogue of :meth:`_wait_timeout`."""
        soonest = pool.earliest_start()
        if self.shard_timeout is None or soonest is None:
            return _IDLE_WAIT_SECONDS
        remaining = soonest + self.shard_timeout - time.monotonic()
        return max(0.0, min(_IDLE_WAIT_SECONDS, remaining))

    def _wait_timeout(self, running) -> float:
        """How long one blocking wait may last before ``_reap`` runs.

        With a shard timeout configured, the wait ends no later than
        the earliest running shard's deadline so overruns are policed
        on time; either way it is capped at :data:`_IDLE_WAIT_SECONDS`.
        """
        if self.shard_timeout is None or not running:
            return _IDLE_WAIT_SECONDS
        now = time.monotonic()
        soonest = min(started_at for _, started_at, _ in running.values())
        remaining = soonest + self.shard_timeout - now
        return max(0.0, min(_IDLE_WAIT_SECONDS, remaining))

    def _reap(self, running, pending, fallback, attempts, drain,
              counters) -> None:
        """Police timeouts and detect crashed workers."""
        now = time.monotonic()
        for index, (process, started_at, shard) in list(running.items()):
            if (self.shard_timeout is not None
                    and now - started_at > self.shard_timeout):
                process.terminate()
                process.join()
                running.pop(index)
                self._retry(pending, fallback, attempts, shard,
                            f"timeout after {self.shard_timeout:.1f}s",
                            counters, "timeouts")
            elif not process.is_alive():
                # Its result may still be in flight: give the queue one
                # final chance before declaring a crash.
                drain(0.1)
                if index not in running:
                    continue  # the drain handled it
                process.join()
                running.pop(index)
                self._retry(pending, fallback, attempts, shard,
                            f"worker crashed (exit code {process.exitcode})",
                            counters, "crashes")

    def _retry(self, pending, fallback, attempts, shard: ShardSpec,
               reason: str, counters: Dict[str, int], kind: str) -> None:
        counters[kind] += 1
        self.progress.on_shard_retry(shard, attempts[shard.index], reason)
        if attempts[shard.index] <= self.max_retries:
            counters["retries"] += 1
            pending.append(shard)
        else:
            fallback.append(shard)

    @staticmethod
    def _shard_by_index(shard_specs: List[ShardSpec],
                        index: int) -> ShardSpec:
        for shard in shard_specs:
            if shard.index == index:
                return shard
        raise ReproError(f"unknown shard index {index}")  # pragma: no cover


def run_fleet(spec: CampaignSpec, shards: Optional[int] = None,
              workers: Optional[int] = None, backend: str = "auto",
              shard_timeout: Optional[float] = None, max_retries: int = 2,
              progress: Optional[FleetProgress] = None,
              checkpoint=None, telemetry: bool = False,
              profile_shards: bool = False) -> FleetReport:
    """One-call fleet execution (the ``python -m repro fleet`` engine)."""
    with FleetExecutor(
        workers=workers,
        backend=backend,
        shard_timeout=shard_timeout,
        max_retries=max_retries,
        progress=progress,
        telemetry=telemetry,
        profile_shards=profile_shards,
    ) as executor:
        return executor.run(spec, shards=shards, checkpoint=checkpoint)
