"""Fleet executor: run campaign shards across a worker pool.

The process backend is a small explicit scheduler over
``multiprocessing.Process`` workers rather than a ``Pool``: a pool
loses the task (and may hang the caller) when a worker dies abruptly,
while the whole point here is precise per-shard crash/timeout
semantics — a shard whose worker crashes or overruns its deadline is
retried a bounded number of times, then degraded to the in-process
serial backend, which is also the fleet-wide fallback when
``multiprocessing`` itself is unavailable (restricted sandboxes).

Results merge in shard-index order regardless of completion order, so
the merged stats honour the determinism contract of
:mod:`repro.engine.spec` for any worker count.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.campaign import Campaign, CampaignStats
from repro.engine.merge import FleetReport, ShardResult
from repro.engine.progress import FleetProgress, NullProgress
from repro.engine.spec import CampaignSpec, ShardSpec, parse_chaos
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder

_OK = "ok"
_ERROR = "error"
#: Ceiling on one blocking wait in the pool loop.  The loop does not
#: poll at this cadence — results and worker deaths interrupt the wait
#: immediately (see :func:`wait_for_result`); the ceiling only bounds
#: how stale the timeout bookkeeping in ``_reap`` can get.
_IDLE_WAIT_SECONDS = 0.5

BACKENDS = ("auto", "process", "serial")


def default_workers() -> int:
    """Worker-count default: the machine's cores, capped at 4."""
    return max(1, min(4, os.cpu_count() or 1))


def run_shard(shard: ShardSpec) -> ShardResult:
    """Execute one shard in this process (the serial backend's unit).

    Provisions a fresh device from the shard spec, publishes the
    shard's slice of the global workload, runs the installs, and
    returns compacted (picklable, trace-free) stats.  When the
    campaign spec has ``observe=True`` the shard also carries its
    trace records and metrics snapshot (simulated-time only, so both
    are deterministic for a fixed shard spec).
    """
    started = time.perf_counter()
    spec = shard.campaign
    recorder = TraceRecorder() if spec.observe else None
    metrics = MetricsRegistry() if spec.observe else None
    scenario = shard.build_scenario(recorder=recorder, metrics=metrics)
    packages = shard.publish_workload(scenario)
    # Compact at record time: outcomes are projected to trace-free
    # OutcomeRecord as they happen, so the shard never accumulates
    # transaction traces only to strip them post-hoc.
    campaign = Campaign(scenario, stats=CampaignStats(
        compact=True, keep_outcomes=spec.keep_outcomes))
    campaign.install_many(
        packages,
        arm_attacker=spec.arm_attacker,
        rearm_between=spec.rearm_between,
    )
    return ShardResult(
        shard_index=shard.index,
        start=shard.start,
        stop=shard.stop,
        stats=campaign.stats,
        wall_seconds=time.perf_counter() - started,
        backend="serial",
        trace=recorder.records() if recorder is not None else None,
        metrics=metrics.snapshot() if metrics is not None else None,
    )


def _chaos_indices(spec: CampaignSpec, mode: str) -> Set[int]:
    chaos_mode, indices = parse_chaos(spec.chaos)
    if chaos_mode != mode:
        return set()
    return set(indices)


def _shard_entry(result_queue, shard: ShardSpec) -> None:
    """Worker-process entry point.

    Failure injection (``spec.chaos``) lives here on purpose: only
    pool workers honour it, so the serial fallback always recovers.
    """
    try:
        if shard.index in _chaos_indices(shard.campaign, "crash"):
            os._exit(13)
        if shard.index in _chaos_indices(shard.campaign, "hang"):
            time.sleep(3600)
        if shard.index in _chaos_indices(shard.campaign, "error"):
            raise RuntimeError(f"injected error in shard {shard.index}")
        result = run_shard(shard)
        result.backend = "process"
        result_queue.put((shard.index, _OK, result))
    except BaseException as exc:  # pragma: no cover - depends on failure mode
        try:
            result_queue.put(
                (shard.index, _ERROR, f"{type(exc).__name__}: {exc}"))
        except Exception:
            os._exit(14)


def wait_for_result(result_queue, processes=(),
                    timeout: float = _IDLE_WAIT_SECONDS) -> bool:
    """Block until the result queue has data, a worker exits, or timeout.

    The scheduler's replacement for fixed-interval polling: it sleeps
    on the queue's underlying pipe and every worker's death sentinel at
    once (:func:`multiprocessing.connection.wait`), so a finished shard
    or a crashed worker wakes the parent immediately instead of after
    the next poll tick.  Returns True when the queue signalled readable
    (a ``get`` should now return promptly); False on a sentinel wake or
    timeout.  Queues without an inspectable pipe conservatively return
    True, degrading to the caller's timed ``get``.
    """
    reader = getattr(result_queue, "_reader", None)
    if reader is None:  # unexpected queue implementation
        return True
    from multiprocessing.connection import wait as connection_wait

    sentinels = [reader]
    for process in processes:
        sentinel = getattr(process, "sentinel", None)
        if sentinel is not None:
            sentinels.append(sentinel)
    try:
        ready = connection_wait(sentinels, timeout)
    except OSError:  # a sentinel closed under us: treat as a wake
        return True
    return reader in ready


def multiprocessing_usable() -> bool:
    """Can this environment create process pools at all?

    Creating a queue exercises the semaphores and pipes that
    restricted sandboxes typically forbid.
    """
    try:
        import multiprocessing

        context = multiprocessing.get_context()
        probe = context.Queue()
        probe.close()
        probe.join_thread()
        return True
    except (ImportError, OSError, PermissionError):
        return False


class FleetExecutor:
    """Shard a campaign spec, execute the shards, merge the results."""

    def __init__(self, workers: Optional[int] = None, backend: str = "auto",
                 shard_timeout: Optional[float] = None, max_retries: int = 2,
                 progress: Optional[FleetProgress] = None) -> None:
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; valid: {BACKENDS}")
        if max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.progress = progress if progress is not None else NullProgress()

    # -- public API -----------------------------------------------------------

    def run(self, spec: CampaignSpec,
            shards: Optional[int] = None) -> FleetReport:
        """Run ``spec`` across the pool and return the merged report."""
        started = time.perf_counter()
        shard_count = shards if shards is not None else self.workers
        shard_specs = spec.shard(shard_count)
        backend = self._resolve_backend()
        workers = 1 if backend == "serial" else min(self.workers,
                                                    len(shard_specs) or 1)
        self.progress.on_fleet_start(spec, len(shard_specs), workers, backend)
        counters = {"retries": 0, "timeouts": 0, "crashes": 0,
                    "errors": 0, "fallbacks": 0}
        if backend == "serial":
            results = self._run_serial(shard_specs)
        else:
            results = self._run_pool(shard_specs, workers, counters)
        report = FleetReport.from_shards(
            spec, results,
            wall_seconds=time.perf_counter() - started,
            workers=workers, backend=backend,
            counters=counters,
        )
        self.progress.on_fleet_done(report)
        return report

    def _resolve_backend(self) -> str:
        if self.backend == "serial":
            return "serial"
        if self.backend == "auto" and self.workers <= 1:
            return "serial"
        if not multiprocessing_usable():
            # Graceful degradation: both "auto" and an explicit
            # "process" request fall back rather than fail.
            return "serial"
        return "process"

    # -- serial backend -------------------------------------------------------

    def _run_serial(self, shard_specs: List[ShardSpec]) -> List[ShardResult]:
        results = []
        for shard in shard_specs:
            self.progress.on_shard_start(shard, 1)
            result = run_shard(shard)
            results.append(result)
            self.progress.on_shard_done(result, len(results),
                                        len(shard_specs))
        return results

    # -- process backend ------------------------------------------------------

    def _run_pool(self, shard_specs: List[ShardSpec], workers: int,
                  counters: Dict[str, int]) -> List[ShardResult]:
        import multiprocessing

        context = multiprocessing.get_context()
        result_queue = context.Queue()
        pending: Deque[ShardSpec] = deque(shard_specs)
        running: Dict[int, Tuple[object, float, ShardSpec]] = {}
        attempts: Dict[int, int] = {shard.index: 0 for shard in shard_specs}
        results: Dict[int, ShardResult] = {}
        fallback: List[ShardSpec] = []
        total = len(shard_specs)

        def handle(message: Tuple[int, str, object]) -> None:
            index, status, payload = message
            if index in results:
                return  # stale message from a timed-out-then-finished worker
            entry = running.pop(index, None)
            if entry is not None:
                entry[0].join()
            if status == _OK:
                payload.attempts = attempts[index]
                results[index] = payload
                self.progress.on_shard_done(payload, len(results), total)
            else:
                self._retry(pending, fallback, attempts,
                            self._shard_by_index(shard_specs, index),
                            str(payload), counters, "errors")

        def drain(timeout: float) -> int:
            handled = 0
            block = timeout
            while True:
                try:
                    message = result_queue.get(timeout=block)
                except queue_module.Empty:
                    return handled
                handle(message)
                handled += 1
                block = 0.0

        try:
            while pending or running:
                while pending and len(running) < workers:
                    shard = pending.popleft()
                    attempts[shard.index] += 1
                    self.progress.on_shard_start(shard,
                                                 attempts[shard.index])
                    process = context.Process(
                        target=_shard_entry,
                        args=(result_queue, shard),
                        name=f"fleet-shard-{shard.index}",
                        daemon=True,
                    )
                    process.start()
                    running[shard.index] = (process, time.monotonic(), shard)
                if wait_for_result(
                        result_queue,
                        [entry[0] for entry in running.values()],
                        self._wait_timeout(running)):
                    drain(_IDLE_WAIT_SECONDS)
                self._reap(running, pending, fallback, attempts, drain,
                           counters)
        finally:
            for process, _, _ in running.values():
                process.terminate()
                process.join()
            result_queue.close()

        for shard in fallback:
            counters["fallbacks"] += 1
            attempts[shard.index] += 1
            self.progress.on_shard_start(shard, attempts[shard.index])
            result = run_shard(shard)
            result.attempts = attempts[shard.index]
            result.backend = "serial-fallback"
            results[shard.index] = result
            self.progress.on_shard_done(result, len(results), total)
        return list(results.values())

    def _wait_timeout(self, running) -> float:
        """How long one blocking wait may last before ``_reap`` runs.

        With a shard timeout configured, the wait ends no later than
        the earliest running shard's deadline so overruns are policed
        on time; either way it is capped at :data:`_IDLE_WAIT_SECONDS`.
        """
        if self.shard_timeout is None or not running:
            return _IDLE_WAIT_SECONDS
        now = time.monotonic()
        soonest = min(started_at for _, started_at, _ in running.values())
        remaining = soonest + self.shard_timeout - now
        return max(0.0, min(_IDLE_WAIT_SECONDS, remaining))

    def _reap(self, running, pending, fallback, attempts, drain,
              counters) -> None:
        """Police timeouts and detect crashed workers."""
        now = time.monotonic()
        for index, (process, started_at, shard) in list(running.items()):
            if (self.shard_timeout is not None
                    and now - started_at > self.shard_timeout):
                process.terminate()
                process.join()
                running.pop(index)
                self._retry(pending, fallback, attempts, shard,
                            f"timeout after {self.shard_timeout:.1f}s",
                            counters, "timeouts")
            elif not process.is_alive():
                # Its result may still be in flight: give the queue one
                # final chance before declaring a crash.
                drain(0.1)
                if index not in running:
                    continue  # the drain handled it
                process.join()
                running.pop(index)
                self._retry(pending, fallback, attempts, shard,
                            f"worker crashed (exit code {process.exitcode})",
                            counters, "crashes")

    def _retry(self, pending, fallback, attempts, shard: ShardSpec,
               reason: str, counters: Dict[str, int], kind: str) -> None:
        counters[kind] += 1
        self.progress.on_shard_retry(shard, attempts[shard.index], reason)
        if attempts[shard.index] <= self.max_retries:
            counters["retries"] += 1
            pending.append(shard)
        else:
            fallback.append(shard)

    @staticmethod
    def _shard_by_index(shard_specs: List[ShardSpec],
                        index: int) -> ShardSpec:
        for shard in shard_specs:
            if shard.index == index:
                return shard
        raise ReproError(f"unknown shard index {index}")  # pragma: no cover


def run_fleet(spec: CampaignSpec, shards: Optional[int] = None,
              workers: Optional[int] = None, backend: str = "auto",
              shard_timeout: Optional[float] = None, max_retries: int = 2,
              progress: Optional[FleetProgress] = None) -> FleetReport:
    """One-call fleet execution (the ``python -m repro fleet`` engine)."""
    executor = FleetExecutor(
        workers=workers,
        backend=backend,
        shard_timeout=shard_timeout,
        max_retries=max_retries,
        progress=progress,
    )
    return executor.run(spec, shards=shards)
