"""Sharded parallel fleet-execution engine for campaigns.

Scales the paper's batch experiments (the Table VII attack x defense
grid, the Section VI-A 924-install field test) from one simulated
device in one process to a sharded fleet across a worker pool, with a
hard determinism contract: one top-level seed produces bit-identical
merged stats for any shard count and worker count.

- :mod:`repro.engine.spec` — picklable campaign/shard specs.
- :mod:`repro.engine.executor` — worker pool, retries, serial fallback.
- :mod:`repro.engine.merge` — associative stat merging + fleet aggregates.
- :mod:`repro.engine.progress` — progress/throughput hooks.
"""

from repro.engine.executor import (
    FleetExecutor,
    WarmPool,
    default_workers,
    drain_queue,
    multiprocessing_usable,
    run_fleet,
    run_shard,
    wait_for_result,
)
from repro.engine.merge import (
    FleetReport,
    OutcomeRecord,
    ShardResult,
    compact_stats,
    merge_stats,
    wilson_interval,
)
from repro.engine.progress import (
    ConsoleProgress,
    FleetProgress,
    MetricsProgress,
    NullProgress,
    TeeProgress,
)
from repro.engine.spec import (
    ATTACKS,
    CHAOS_MODES,
    DEVICES,
    CampaignSpec,
    ShardSpec,
    parse_chaos,
)

__all__ = [
    "ATTACKS",
    "CHAOS_MODES",
    "DEVICES",
    "CampaignSpec",
    "ConsoleProgress",
    "FleetExecutor",
    "FleetProgress",
    "FleetReport",
    "MetricsProgress",
    "NullProgress",
    "OutcomeRecord",
    "ShardResult",
    "ShardSpec",
    "TeeProgress",
    "WarmPool",
    "compact_stats",
    "default_workers",
    "drain_queue",
    "merge_stats",
    "multiprocessing_usable",
    "parse_chaos",
    "run_fleet",
    "run_shard",
    "wait_for_result",
    "wilson_interval",
]
