"""Deterministic merging of shard results into fleet-level stats.

Shard workers return :class:`ShardResult` objects whose stats carry
slim, picklable :class:`OutcomeRecord` entries (an ``InstallOutcome``
minus its transaction trace).  The merge folds shard stats *in shard
order* with the associative :meth:`CampaignStats.merge`, so the merged
stats of a fixed seed are bit-identical no matter how many shards or
workers produced them.  Wall-clock timing is inherently nondeterministic
and is therefore reported beside the stats, never inside them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.campaign import CampaignStats
from repro.core.outcomes import OutcomeRecord
from repro.engine.spec import CampaignSpec
from repro.obs.metrics import Snapshot, merge_snapshots

__all__ = [
    "FleetReport", "OutcomeRecord", "ShardResult", "compact_stats",
    "merge_stats", "wilson_interval",
]


def compact_stats(stats: CampaignStats) -> CampaignStats:
    """Copy ``stats`` with outcomes reduced to :class:`OutcomeRecord`.

    Shard workers call this before pickling results back to the
    parent: transaction traces reference live simulator objects and
    are both heavy and irrelevant to fleet aggregates.
    """
    compact = CampaignStats(
        runs=stats.runs,
        installs_completed=stats.installs_completed,
        hijacks=stats.hijacks,
        clean_installs=stats.clean_installs,
        errors=stats.errors,
        alarms=stats.alarms,
        blocked=stats.blocked,
        alarmed_runs=stats.alarmed_runs,
        blocked_runs=stats.blocked_runs,
    )
    for outcome in stats.outcomes:
        if isinstance(outcome, OutcomeRecord):
            compact.outcomes.append(outcome)
        else:
            compact.outcomes.append(OutcomeRecord.from_outcome(outcome))
    return compact


def merge_stats(parts: Iterable[CampaignStats]) -> CampaignStats:
    """Fold stats left-to-right; empty input yields empty stats."""
    merged = CampaignStats()
    for part in parts:
        merged = merged.merge(part)
    return merged


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Behaves sanely at the extremes the fleet actually hits (0 hijacks
    in 50k runs), unlike the normal approximation.  ``trials == 0``
    yields the vacuous ``(0.0, 1.0)``.
    """
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = p + z * z / (2 * trials)
    margin = z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, (centre - margin) / denom),
            min(1.0, (centre + margin) / denom))


@dataclass
class ShardResult:
    """What one shard execution produced.

    ``trace``/``metrics`` are populated only when the campaign spec has
    ``observe=True``: the shard's simulated-time trace records and its
    metrics snapshot (both deterministic for a fixed shard spec —
    wall-clock stays in ``wall_seconds``, beside them).
    """

    shard_index: int
    start: int
    stop: int
    stats: CampaignStats
    wall_seconds: float
    attempts: int = 1
    backend: str = "process"
    trace: Optional[List[Dict[str, Any]]] = None
    metrics: Optional[Snapshot] = None
    #: Wall-clock plane only (see :mod:`repro.obs.runtime`): a
    #: ``ShardTelemetry.to_dict()`` payload when the run had telemetry
    #: enabled, and an optional marshaled cProfile blob.  Neither ever
    #: feeds the deterministic merge above.
    telemetry: Optional[Dict[str, Any]] = None
    profile: Optional[bytes] = None


@dataclass
class FleetReport:
    """Merged stats plus fleet-level aggregates of one engine run.

    ``metrics`` is the fold of the per-shard snapshots in shard-index
    order (None unless the spec had ``observe=True``); ``counters``
    holds the executor's retry/timeout/crash/fallback tallies, which
    depend on wall-clock scheduling and therefore live beside the
    deterministic metrics, never inside them.
    """

    spec: CampaignSpec
    shards: List[ShardResult] = field(default_factory=list)
    stats: CampaignStats = field(default_factory=CampaignStats)
    wall_seconds: float = 0.0
    workers: int = 1
    backend: str = "serial"
    metrics: Optional[Snapshot] = None
    counters: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock plane: the associative fold of per-shard telemetry
    #: (:func:`repro.obs.runtime.fold_shard_telemetry`), None when the
    #: run had telemetry disabled.  Reported beside the deterministic
    #: stats/metrics, never inside them.
    telemetry: Optional[Dict[str, Any]] = None

    @classmethod
    def from_shards(cls, spec: CampaignSpec, shards: List[ShardResult],
                    wall_seconds: float, workers: int, backend: str,
                    counters: Optional[Dict[str, int]] = None,
                    ) -> "FleetReport":
        from repro.obs.runtime import fold_shard_telemetry

        ordered = sorted(shards, key=lambda shard: shard.shard_index)
        snapshots = [shard.metrics for shard in ordered
                     if shard.metrics is not None]
        telemetry = fold_shard_telemetry(ordered)
        if telemetry is not None:
            telemetry["retries"] = sum(
                max(0, shard.attempts - 1) for shard in ordered)
        return cls(
            spec=spec,
            shards=ordered,
            stats=merge_stats(shard.stats for shard in ordered),
            wall_seconds=wall_seconds,
            workers=workers,
            backend=backend,
            metrics=merge_snapshots(snapshots) if snapshots else None,
            counters=dict(counters or {}),
            telemetry=telemetry,
        )

    def trace_records(self) -> List[Dict[str, Any]]:
        """All shard trace records in shard-index order, shard-tagged.

        Per-shard records are deterministic, and the concatenation
        order is the shard index, so the whole list (and its JSONL
        export) is byte-identical for a fixed ``(spec, shard count)``
        regardless of worker count or backend.
        """
        records = []
        for shard in self.shards:
            for record in shard.trace or ():
                tagged = dict(record)
                tagged["shard"] = shard.shard_index
                records.append(tagged)
        return records

    # -- aggregates ------------------------------------------------------------

    @property
    def hijack_ci(self) -> Tuple[float, float]:
        """95% Wilson interval on the per-run hijack probability."""
        return wilson_interval(self.stats.hijacks, self.stats.runs)

    @property
    def alarm_rate(self) -> float:
        """Fraction of runs that raised at least one alarm."""
        return self.stats.alarmed_runs / self.stats.runs if self.stats.runs else 0.0

    @property
    def alarm_ci(self) -> Tuple[float, float]:
        """95% Wilson interval on the per-run alarm probability."""
        return wilson_interval(self.stats.alarmed_runs, self.stats.runs)

    @property
    def throughput(self) -> float:
        """Installs per wall-clock second across the whole fleet."""
        return self.stats.runs / self.wall_seconds if self.wall_seconds else 0.0

    def shard_timing(self) -> Tuple[float, float, float]:
        """(min, mean, max) shard wall-clock seconds."""
        times = [shard.wall_seconds for shard in self.shards]
        if not times:
            return (0.0, 0.0, 0.0)
        return (min(times), sum(times) / len(times), max(times))

    def render(self) -> str:
        """Human-readable fleet summary (the ``repro fleet`` output)."""
        stats = self.stats
        lo, hi = self.hijack_ci
        alo, ahi = self.alarm_ci
        tmin, tmean, tmax = self.shard_timing()
        retried = sum(1 for shard in self.shards if shard.attempts > 1)
        lines = [
            f"fleet: {stats.runs} installs over {len(self.shards)} shard(s), "
            f"{self.workers} worker(s), backend={self.backend}",
            f"  installer={self.spec.installer} attack={self.spec.attack} "
            f"defenses={list(self.spec.defenses) or '-'} "
            f"device={self.spec.device} seed={self.spec.seed}",
            f"  installed  : {stats.installs_completed}",
            f"  clean      : {stats.clean_installs}",
            f"  hijacked   : {stats.hijacks}  "
            f"(rate {stats.hijack_rate:.4f}, 95% CI [{lo:.4f}, {hi:.4f}])",
            f"  errors     : {stats.errors}",
            f"  alarms     : {stats.alarms} in {stats.alarmed_runs} run(s)  "
            f"(rate {self.alarm_rate:.4f}, 95% CI [{alo:.4f}, {ahi:.4f}])",
            f"  blocked    : {stats.blocked} in {stats.blocked_runs} run(s)",
            f"  wall clock : {self.wall_seconds:.2f}s  "
            f"({self.throughput:.0f} installs/s)",
            f"  shard time : min {tmin:.2f}s / mean {tmean:.2f}s / "
            f"max {tmax:.2f}s" + (f"  ({retried} retried)" if retried else ""),
        ]
        if self.telemetry:
            from repro.obs.runtime import TelemetryRollup

            lines.append("  telemetry  : "
                         + TelemetryRollup.from_dict(self.telemetry).render())
        if self.counters.get("restored"):
            lines.append(
                f"  resumed    : {self.counters['restored']} shard(s) "
                "restored from checkpoint")
        if any(value for key, value in self.counters.items()
               if key != "restored"):
            counts = self.counters
            lines.append(
                "  faults     : "
                f"{counts.get('timeouts', 0)} timeout(s), "
                f"{counts.get('crashes', 0)} crash(es), "
                f"{counts.get('errors', 0)} error(s), "
                f"{counts.get('retries', 0)} retried, "
                f"{counts.get('fallbacks', 0)} serial fallback(s)")
        return "\n".join(lines)
