"""Picklable campaign and shard specifications for the fleet engine.

A :class:`CampaignSpec` names everything a worker process needs to
rebuild a scenario from scratch — installer, attack, defenses and
device are referenced *by registry name*, never by object, so a spec
crosses process boundaries with plain :mod:`pickle`.

Determinism contract
--------------------
Shard ``i`` of ``n`` runs global installs ``[start, stop)`` of the
campaign on a fresh simulated device.  Everything observable about
install ``k`` is derived from the *global* index ``k`` (package name,
APK size via :meth:`CampaignSpec.size_for`), never from the shard
layout, and per-shard RNG streams are forked from the campaign seed
with the :meth:`repro.sim.rand.DeterministicRandom.fork` label-hash.
The merged stats of a fixed ``(spec, seed)`` are therefore
bit-identical for any shard count and worker count.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.android.device import (
    DeviceProfile,
    galaxy_j5_lowend,
    galaxy_s6_edge_verizon,
    nexus5,
    nexus5_marshmallow,
    xiaomi_mi4,
)
from repro.attacks.base import MaliciousApp, fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.attacks.watcher_flood import WatcherFloodHijacker
from repro.core.scenario import VALID_DEFENSES, Scenario
from repro.errors import ReproError
from repro.installers import installer_by_name
from repro.sim.events import DEFAULT_DRAIN_INTERVAL_NS, WatchLimits
from repro.sim.rand import DeterministicRandom

#: Attacks a spec may name.  ``None`` means a defense-only / benign run.
ATTACKS: Dict[str, Optional[Type[MaliciousApp]]] = {
    "none": None,
    "fileobserver": FileObserverHijacker,
    "wait-and-see": WaitAndSeeHijacker,
    "watcher-flood": WatcherFloodHijacker,
}

#: Device profiles a spec may name.
DEVICES: Dict[str, Callable[[], DeviceProfile]] = {
    "nexus5": nexus5,
    "nexus5-marshmallow": nexus5_marshmallow,
    "xiaomi-mi4": xiaomi_mi4,
    "galaxy-s6": galaxy_s6_edge_verizon,
    "galaxy-j5": galaxy_j5_lowend,
}


def workload_package(index: int) -> str:
    """Package name of global install ``index`` (shard-independent)."""
    return f"com.fleet.app{index:06d}"


#: Failure-injection modes a chaos spec may name.
CHAOS_MODES = ("crash", "hang", "error")

#: Floor for :attr:`CampaignSpec.poll_interval_ns`.  The wait-and-see
#: attacker polls for the whole 60 s arm budget; anything faster than
#: 1 kHz multiplies into millions of kernel events per trial and trips
#: the simulator's livelock guard (found by ``repro fuzz``).
MIN_POLL_INTERVAL_NS = 1_000_000


def parse_chaos(chaos: Optional[str],
                shard_count: Optional[int] = None) -> Tuple[str, Tuple[int, ...]]:
    """Parse and validate a ``mode:i,j,...`` chaos spec.

    Validation happens here — once, up front, in the parent process —
    so a malformed spec raises a clean :class:`ReproError` (CLI exit 2)
    instead of a raw ``ValueError`` from inside worker scheduling, and
    every rejection message names the offending token.  Rejected up
    front: non-integer tokens, negative indices, duplicate indices and
    empty tokens (a trailing or doubled comma).  When ``shard_count``
    is given (the executor knows it at shard time), an index past the
    last shard is rejected too — otherwise the injection would silently
    never fire.  Returns ``(mode, indices)``; ``("", ())`` when
    ``chaos`` is None.
    """
    if chaos is None:
        return ("", ())
    mode, _, raw = chaos.partition(":")
    if mode not in CHAOS_MODES:
        raise ReproError(
            f"invalid chaos spec {chaos!r}: unknown mode {mode!r} "
            f"(valid: {CHAOS_MODES})")
    indices: List[int] = []
    if raw:
        for part in raw.split(","):
            if not part.strip():
                raise ReproError(
                    f"invalid chaos spec {chaos!r}: empty shard index "
                    "(trailing or doubled comma)")
            try:
                index = int(part)
            except ValueError:
                raise ReproError(
                    f"invalid chaos spec {chaos!r}: {part!r} is not a "
                    "shard index") from None
            if index < 0:
                raise ReproError(
                    f"invalid chaos spec {chaos!r}: shard index "
                    f"{part.strip()!r} is negative")
            if index in indices:
                raise ReproError(
                    f"invalid chaos spec {chaos!r}: duplicate shard "
                    f"index {part.strip()!r}")
            indices.append(index)
    if shard_count is not None:
        for index in indices:
            if index >= shard_count:
                raise ReproError(
                    f"invalid chaos spec {chaos!r}: shard index {index} "
                    f"is out of range for {shard_count} shard(s)")
    return (mode, tuple(indices))


@dataclass(frozen=True)
class CampaignSpec:
    """One fleet campaign: scenario recipe x workload x seed."""

    installs: int
    installer: str = "amazon"
    attack: str = "none"
    defenses: Tuple[str, ...] = ()
    device: str = "nexus5"
    seed: int = 7
    base_size_bytes: int = 4096
    arm_attacker: bool = True
    rearm_between: bool = True
    #: Test-only failure injection, e.g. ``"crash:1"`` or ``"hang:0"``
    #: (only honoured inside pool worker processes, never in-process).
    chaos: Optional[str] = None
    #: Record per-shard traces and metric snapshots (repro.obs).
    observe: bool = False
    #: Retain at most this many per-run outcome records per shard
    #: (None = all; 0 = none).  Aggregate counters always cover every
    #: run — this only bounds shard memory and result-pickle size.
    keep_outcomes: Optional[int] = None
    #: Candidate extra ``uses-permission`` entries for published APKs;
    #: each install draws a subset derived from its *global* index, so
    #: APK shapes stay shard-independent (see :meth:`permissions_for`).
    permission_pool: Tuple[str, ...] = ()
    #: Upper bound on extra permissions per published APK (0 = plain
    #: APKs, the pre-fuzz behaviour).
    max_extra_permissions: int = 0
    #: Poll interval of the ``wait-and-see`` attacker in simulated ns
    #: (None = the attack's default); a fuzzable timing offset.
    poll_interval_ns: Optional[int] = None
    #: Device-wide FileObserver queue bound (None = lossless watchers,
    #: the historical behaviour).  See repro.sim.events.WatchLimits.
    watch_queue_depth: Optional[int] = None
    #: Simulated consumer latency per delivered watch event; None with
    #: a queue depth set means the device default drain interval.
    watch_drain_interval_ns: Optional[int] = None
    #: Coalesce identical consecutive pending watch events.
    watch_coalesce: bool = False
    #: Test-only: neuter the named (enabled) defense after
    #: provisioning — it stays installed but stops reacting.  Exists so
    #: the fuzz completeness oracle can prove it detects a broken
    #: defense; never set it outside tests.
    sabotage_defense: Optional[str] = None

    def __post_init__(self) -> None:
        if self.installs < 0:
            raise ReproError(f"installs must be >= 0, got {self.installs}")
        if self.keep_outcomes is not None and self.keep_outcomes < 0:
            raise ReproError(
                f"keep_outcomes must be >= 0 or None, got {self.keep_outcomes}")
        parse_chaos(self.chaos)  # raises on a malformed spec
        installer_by_name(self.installer)  # raises on unknown name
        if self.attack not in ATTACKS:
            raise ReproError(
                f"unknown attack {self.attack!r}; known: {sorted(ATTACKS)}")
        if self.device not in DEVICES:
            raise ReproError(
                f"unknown device {self.device!r}; known: {sorted(DEVICES)}")
        for name in self.defenses:
            if name not in VALID_DEFENSES:
                raise ReproError(
                    f"unknown defense {name!r}; valid: {VALID_DEFENSES}")
        if self.max_extra_permissions < 0:
            raise ReproError(
                f"max_extra_permissions must be >= 0, "
                f"got {self.max_extra_permissions}")
        if self.max_extra_permissions > len(self.permission_pool):
            raise ReproError(
                f"max_extra_permissions ({self.max_extra_permissions}) "
                f"exceeds the permission pool size "
                f"({len(self.permission_pool)})")
        if len(set(self.permission_pool)) != len(self.permission_pool):
            raise ReproError(
                f"permission_pool has duplicates: {self.permission_pool}")
        if (self.poll_interval_ns is not None
                and self.poll_interval_ns < MIN_POLL_INTERVAL_NS):
            # Found by fuzzing: a sub-millisecond poll loop against the
            # 60 s arm budget floods the kernel's event cap (a livelock
            # by exhaustion), so reject it here instead of deep in a run.
            raise ReproError(
                f"poll_interval_ns must be >= {MIN_POLL_INTERVAL_NS} "
                f"(1 ms), got {self.poll_interval_ns}")
        if (self.sabotage_defense is not None
                and self.sabotage_defense not in self.defenses):
            raise ReproError(
                f"sabotage_defense {self.sabotage_defense!r} is not one of "
                f"the enabled defenses {self.defenses}")
        if "dapp" in self.defenses and "dapp-rescan" in self.defenses:
            raise ReproError("defenses 'dapp' and 'dapp-rescan' are "
                             "mutually exclusive variants of the same app")
        if (self.watch_queue_depth is not None
                and self.watch_queue_depth < 1):
            raise ReproError(
                f"watch_queue_depth must be >= 1, "
                f"got {self.watch_queue_depth}")
        if (self.watch_drain_interval_ns is not None
                and self.watch_drain_interval_ns < 0):
            raise ReproError(
                f"watch_drain_interval_ns must be >= 0, "
                f"got {self.watch_drain_interval_ns}")

    def watch_limits(self) -> Optional[WatchLimits]:
        """The device-wide loss model these axes describe (None = lossless)."""
        if (self.watch_queue_depth is None
                and self.watch_drain_interval_ns is None
                and not self.watch_coalesce):
            return None
        drain = self.watch_drain_interval_ns
        if drain is None:
            drain = (DEFAULT_DRAIN_INTERVAL_NS
                     if self.watch_queue_depth is not None else 0)
        return WatchLimits(max_queue_depth=self.watch_queue_depth,
                           drain_interval_ns=drain,
                           coalesce=self.watch_coalesce)

    # -- serialization (the serve protocol's wire form) ------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-clean dict form: tuples become lists, field order fixed.

        The inverse of :meth:`from_json_dict`; the round trip is exact
        (the reconstructed spec compares equal), which the serve
        protocol and the checkpoint journal both rely on.
        """
        data = asdict(self)
        data["defenses"] = list(self.defenses)
        data["permission_pool"] = list(self.permission_pool)
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild (and re-validate) a spec from its dict form.

        Unknown fields are rejected — a client speaking a newer
        protocol should fail loudly, not lose options silently.
        Missing fields fall back to the dataclass defaults so minimal
        submissions stay minimal.
        """
        if not isinstance(data, dict):
            raise ReproError(
                f"campaign spec must be a JSON object, "
                f"got {type(data).__name__}")
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"campaign spec has unknown field(s): {sorted(unknown)}")
        if "installs" not in data:
            raise ReproError("campaign spec is missing 'installs'")
        fields = dict(data)
        for name in ("defenses", "permission_pool"):
            if name in fields:
                fields[name] = tuple(fields[name])
        return cls(**fields)

    def canonical_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — byte-stable.

        Equal specs serialize to identical bytes, so this string keys
        the checkpoint journal's content addressing.
        """
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    # -- workload derivation (global, shard-independent) ----------------------

    def size_for(self, index: int) -> int:
        """APK size of global install ``index``.

        Forked from the campaign seed by install label, so a package
        gets the same size no matter which shard publishes it.
        """
        rng = DeterministicRandom(self.seed).fork(f"pkg-{index}")
        return self.base_size_bytes + rng.randint(0, self.base_size_bytes)

    def permissions_for(self, index: int) -> Tuple[str, ...]:
        """Extra permissions of global install ``index``.

        Derived, like :meth:`size_for`, from the campaign seed and the
        *global* index — never the shard layout — so the APK shape of
        install ``k`` is identical no matter which shard publishes it.
        The subset keeps the pool's declaration order for a canonical
        manifest shape.
        """
        if not self.permission_pool or not self.max_extra_permissions:
            return ()
        rng = DeterministicRandom(self.seed).fork(f"perm-{index}")
        count = rng.randint(0, self.max_extra_permissions)
        if count == 0:
            return ()
        picked = set(rng.sample(self.permission_pool, count))
        return tuple(p for p in self.permission_pool if p in picked)

    def child_seed(self, shard_index: int) -> int:
        """Scenario seed of shard ``shard_index`` (sim.rand label-hash)."""
        return DeterministicRandom(self.seed).fork(f"shard-{shard_index}").seed

    # -- sharding --------------------------------------------------------------

    def shard(self, count: int) -> List["ShardSpec"]:
        """Partition the workload into ``count`` contiguous shards.

        Shards are balanced to within one install.  A one-shot
        attacker (``rearm_between=False``) arms once per *scenario*,
        which would make results depend on the shard layout, so such
        campaigns refuse to shard.
        """
        if count < 1:
            raise ReproError(f"shard count must be >= 1, got {count}")
        # The shard count is only known here: reject chaos indices that
        # would silently never fire.
        parse_chaos(self.chaos, shard_count=count)
        if count > 1 and self.attack != "none" and not self.rearm_between:
            raise ReproError(
                "a one-shot attacker (rearm_between=False) arms once per "
                "shard; run it unsharded to keep results well-defined")
        base, extra = divmod(self.installs, count)
        shards, start = [], 0
        for index in range(count):
            stop = start + base + (1 if index < extra else 0)
            shards.append(ShardSpec(
                campaign=self,
                index=index,
                count=count,
                start=start,
                stop=stop,
                seed=self.child_seed(index),
            ))
            start = stop
        return shards


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of a campaign: global installs [start, stop)."""

    campaign: CampaignSpec
    index: int
    count: int
    start: int
    stop: int
    seed: int

    @property
    def installs(self) -> int:
        """Number of installs this shard runs."""
        return self.stop - self.start

    def build_scenario(self, recorder=None, metrics=None) -> Scenario:
        """Provision this shard's fresh device from the spec.

        ``recorder``/``metrics`` are the shard-local observability
        sinks (:mod:`repro.obs`); the executor creates them when the
        campaign spec has ``observe=True``.
        """
        spec = self.campaign
        installer_cls = installer_by_name(spec.installer)
        attacker_cls = ATTACKS[spec.attack]
        factory = None
        if attacker_cls is not None:
            kwargs = {}
            if (spec.poll_interval_ns is not None
                    and attacker_cls is WaitAndSeeHijacker):
                kwargs["poll_interval_ns"] = spec.poll_interval_ns
            factory = lambda s: attacker_cls(fingerprint_for(installer_cls),
                                             **kwargs)
        device = DEVICES[spec.device]()
        limits = spec.watch_limits()
        if limits is not None:
            device = dataclasses.replace(device, watch_limits=limits)
        scenario = Scenario.build(
            installer=installer_cls,
            attacker_factory=factory,
            device=device,
            defenses=spec.defenses,
            seed=self.seed,
            recorder=recorder,
            metrics=metrics,
        )
        if spec.sabotage_defense is not None:
            _sabotage(scenario, spec.sabotage_defense)
        return scenario

    def publish_workload(self, scenario: Scenario) -> List[str]:
        """Publish this shard's slice; shapes come from global indices."""
        packages = []
        for index in range(self.start, self.stop):
            package = workload_package(index)
            scenario.publish_app(
                package,
                label=f"Fleet App {index}",
                size_bytes=self.campaign.size_for(index),
                uses_permissions=self.campaign.permissions_for(index),
            )
            packages.append(package)
        return packages


#: The scenario attribute holding each defense object, by spec name.
_DEFENSE_ATTRS = {
    "dapp": "dapp",
    "dapp-rescan": "dapp",  # same protection app, hybrid variant
    "fuse-dac": "fuse_dac",
    "intent-detection": "intent_detection",
    "intent-origin": "intent_origin",
}


def _sabotage(scenario: Scenario, defense: str) -> None:
    """Neuter one provisioned defense (test-only, see CampaignSpec)."""
    target = getattr(scenario, _DEFENSE_ATTRS[defense], None)
    if target is not None:
        target.suppress_reactions()
