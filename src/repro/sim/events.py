"""Topic-based publish/subscribe hub used for system-wide notifications.

The Android substrate uses one :class:`EventHub` per simulated device
for filesystem notifications (FileObserver), package broadcasts
(``PACKAGE_ADDED``) and download-manager callbacks.  Delivery is
scheduled through the kernel so subscribers observe events in a
deterministic order and at the simulated time they occur.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.sim.kernel import Kernel

Handler = Callable[[Any], None]


@dataclass
class Subscription:
    """Handle returned by :meth:`EventHub.subscribe`; call ``cancel()``."""

    hub: "EventHub"
    topic: str
    handler: Handler
    active: bool = True

    def cancel(self) -> None:
        """Stop delivering events to this subscription."""
        if self.active:
            self.active = False
            self.hub._remove(self)


class EventHub:
    """Deterministic pub/sub with kernel-scheduled delivery."""

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel
        self._subs: Dict[str, List[Subscription]] = {}
        self._namespace_counts: Dict[str, int] = {}

    @staticmethod
    def _namespace(topic: str) -> str:
        """The topic's namespace: everything before the first colon.

        Topics follow a ``namespace:detail`` convention (``fs:/sdcard``,
        ``broadcast:PACKAGE_ADDED``, ``dm:done:3``); the namespace count
        lets publishers skip event construction entirely when nobody in
        the namespace is listening.
        """
        return topic.partition(":")[0]

    def subscribe(self, topic: str, handler: Handler) -> Subscription:
        """Register ``handler`` for every future event published on ``topic``."""
        sub = Subscription(self, topic, handler)
        self._subs.setdefault(topic, []).append(sub)
        namespace = self._namespace(topic)
        self._namespace_counts[namespace] = \
            self._namespace_counts.get(namespace, 0) + 1
        return sub

    def namespace_active(self, namespace: str) -> bool:
        """True if any active subscription's topic lives in ``namespace``.

        O(1) — the hot-path guard the filesystem uses to skip building
        inotify events on unwatched devices (benign fleet shards have
        no FileObserver and no DAPP attached).
        """
        return self._namespace_counts.get(namespace, 0) > 0

    def publish(self, topic: str, payload: Any = None, delay_ns: int = 0) -> int:
        """Publish ``payload``, delivering via the kernel after ``delay_ns``.

        Returns the number of subscriptions the event was scheduled for.
        Handlers added after ``publish`` do not see the event, matching
        inotify/broadcast semantics.
        """
        subs = self._subs.get(topic)
        if not subs:
            return 0
        targets = [sub for sub in subs if sub.active]
        for sub in targets:
            self._kernel.call_later(delay_ns, _deliver(sub, payload))
        return len(targets)

    def subscriber_count(self, topic: str) -> int:
        """Number of active subscriptions on ``topic``."""
        return sum(1 for sub in self._subs.get(topic, []) if sub.active)

    def _remove(self, sub: Subscription) -> None:
        subs = self._subs.get(sub.topic, [])
        if sub in subs:
            subs.remove(sub)
            namespace = self._namespace(sub.topic)
            count = self._namespace_counts.get(namespace, 0)
            if count > 0:
                self._namespace_counts[namespace] = count - 1


def _deliver(sub: Subscription, payload: Any) -> Callable[[], None]:
    """Build a delivery thunk that respects late cancellation."""

    def run() -> None:
        if sub.active:
            sub.handler(payload)

    return run
