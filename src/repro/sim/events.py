"""Topic-based publish/subscribe hub used for system-wide notifications.

The Android substrate uses one :class:`EventHub` per simulated device
for filesystem notifications (FileObserver), package broadcasts
(``PACKAGE_ADDED``) and download-manager callbacks.  Delivery is
scheduled through the kernel so subscribers observe events in a
deterministic order and at the simulated time they occur.

Real inotify is not lossless: the kernel queue behind a watch
descriptor is bounded (``/proc/sys/fs/inotify/max_queued_events``),
identical consecutive events are coalesced, and once the queue fills
the kernel drops everything and enqueues a single ``IN_Q_OVERFLOW``
telling the consumer it must fall back to a full rescan.  A
subscription created with :class:`WatchLimits` reproduces that model:

* ``max_queue_depth`` bounds the number of accepted-but-undelivered
  events; further publishes are dropped.
* ``coalesce`` drops an event identical (same ``event_type``/``name``)
  to the newest one still queued.
* ``drain_interval_ns`` models consumer read latency: queued events
  are handed over at most one per interval, so bursts occupy the
  queue across simulated time instead of draining instantaneously.
* The first drop of a congestion episode synthesizes one
  :class:`QueueOverflow` sentinel, delivered out-of-band (it bypasses
  the queue, exactly like ``IN_Q_OVERFLOW``).  A new sentinel can only
  fire after the queue has fully drained.

Subscriptions without limits (the default everywhere) use the original
lossless path unchanged — same scheduling, same ordering, same golden
traces.  Loss accounting is per subscription and conserves events:
``delivered + dropped + pending == published`` at every instant, and
``delivered + dropped == published`` once the queue has drained (the
property suite pins this).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.kernel import Kernel

Handler = Callable[[Any], None]

#: Default consumer latency applied when a queue depth is configured
#: without an explicit drain interval: 2 ms per delivered event, the
#: same order of magnitude as a busy userspace inotify reader.
DEFAULT_DRAIN_INTERVAL_NS = 2_000_000


@dataclass(frozen=True)
class WatchLimits:
    """Loss model for one subscription (see module docstring).

    The default instance is lossless and behaves exactly like a
    subscription created without limits.
    """

    max_queue_depth: Optional[int] = None
    drain_interval_ns: int = 0
    coalesce: bool = False

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.drain_interval_ns < 0:
            raise ValueError(
                f"drain_interval_ns must be >= 0, got {self.drain_interval_ns}")

    @property
    def lossless(self) -> bool:
        """True when these limits cannot change delivery at all."""
        return (self.max_queue_depth is None
                and self.drain_interval_ns == 0
                and not self.coalesce)


@dataclass(frozen=True)
class QueueOverflow:
    """Synthesized in place of dropped events — inotify's ``IN_Q_OVERFLOW``.

    Delivered to the subscription's handler out-of-band (it is not
    queued and does not count against ``published``/``delivered``).
    ``dropped`` is the subscription's cumulative overflow-drop count at
    synthesis time.
    """

    topic: str
    time_ns: int
    dropped: int


def _coalesce_key(payload: Any) -> Optional[Tuple[Any, Any]]:
    """Identity used for coalescing: ``(event_type, name)`` duck-typed.

    Payloads without an ``event_type`` attribute (broadcasts, download
    callbacks) are never coalesced.
    """
    event_type = getattr(payload, "event_type", None)
    if event_type is None:
        return None
    return (event_type, getattr(payload, "name", None))


@dataclass
class Subscription:
    """Handle returned by :meth:`EventHub.subscribe`; call ``cancel()``.

    When created with :class:`WatchLimits`, the loss-accounting
    counters below are live; lossless subscriptions leave them at zero
    (their delivery path does no bookkeeping at all).
    """

    hub: "EventHub"
    topic: str
    handler: Handler
    active: bool = True
    limits: Optional[WatchLimits] = None

    #: Events offered to this subscription (bounded path only).
    published: int = 0
    #: Events whose handler actually ran.
    delivered: int = 0
    #: Events dropped because the queue was at ``max_queue_depth``.
    dropped_overflow: int = 0
    #: Events dropped by same-``(event_type, name)`` coalescing.
    dropped_coalesced: int = 0
    #: Events accepted but cancelled before their delivery ran.
    dropped_cancelled: int = 0
    #: Congestion episodes — ``QueueOverflow`` sentinels synthesized.
    overflows: int = 0

    _pending_keys: Deque[Any] = field(default_factory=deque, repr=False)
    _next_delivery_ns: int = field(default=0, repr=False)
    _overflow_open: bool = field(default=False, repr=False)

    @property
    def pending(self) -> int:
        """Accepted events not yet handed to the handler."""
        return len(self._pending_keys)

    @property
    def dropped(self) -> int:
        """Total events lost, for the conservation invariant."""
        return (self.dropped_overflow + self.dropped_coalesced
                + self.dropped_cancelled)

    def cancel(self) -> None:
        """Stop delivering events to this subscription."""
        if self.active:
            self.active = False
            self.hub._remove(self)


class EventHub:
    """Deterministic pub/sub with kernel-scheduled delivery."""

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel
        self._subs: Dict[str, List[Subscription]] = {}
        self._namespace_counts: Dict[str, int] = {}

    @staticmethod
    def _namespace(topic: str) -> str:
        """The topic's namespace: everything before the first colon.

        Topics follow a ``namespace:detail`` convention (``fs:/sdcard``,
        ``broadcast:PACKAGE_ADDED``, ``dm:done:3``); the namespace count
        lets publishers skip event construction entirely when nobody in
        the namespace is listening.
        """
        return topic.partition(":")[0]

    def subscribe(self, topic: str, handler: Handler,
                  limits: Optional[WatchLimits] = None) -> Subscription:
        """Register ``handler`` for every future event published on ``topic``.

        ``limits`` opts the subscription into the bounded/lossy queue
        model; ``None`` or a lossless :class:`WatchLimits` keeps the
        original lossless delivery path.
        """
        if limits is not None and limits.lossless:
            limits = None
        sub = Subscription(self, topic, handler, limits=limits)
        self._subs.setdefault(topic, []).append(sub)
        namespace = self._namespace(topic)
        self._namespace_counts[namespace] = \
            self._namespace_counts.get(namespace, 0) + 1
        return sub

    def namespace_active(self, namespace: str) -> bool:
        """True if any active subscription's topic lives in ``namespace``.

        O(1) — the hot-path guard the filesystem uses to skip building
        inotify events on unwatched devices (benign fleet shards have
        no FileObserver and no DAPP attached).
        """
        return self._namespace_counts.get(namespace, 0) > 0

    def publish(self, topic: str, payload: Any = None, delay_ns: int = 0) -> int:
        """Publish ``payload``, delivering via the kernel after ``delay_ns``.

        Returns the number of subscriptions the event was scheduled for
        (bounded subscriptions count even when the event is dropped —
        the drop is the subscription's loss, not the publisher's).
        Handlers added after ``publish`` do not see the event, matching
        inotify/broadcast semantics.
        """
        subs = self._subs.get(topic)
        if not subs:
            return 0
        targets = [sub for sub in subs if sub.active]
        for sub in targets:
            if sub.limits is None:
                self._kernel.call_later(delay_ns, _deliver(sub, payload))
            else:
                self._offer(sub, payload, delay_ns)
        return len(targets)

    def subscriber_count(self, topic: str) -> int:
        """Number of active subscriptions on ``topic``."""
        return sum(1 for sub in self._subs.get(topic, []) if sub.active)

    # -- bounded (lossy) delivery ----------------------------------------------------------

    def _offer(self, sub: Subscription, payload: Any, delay_ns: int) -> None:
        """Queue ``payload`` on a bounded subscription, or drop it."""
        limits = sub.limits
        assert limits is not None
        sub.published += 1
        key = _coalesce_key(payload)
        if (limits.coalesce and key is not None and sub._pending_keys
                and sub._pending_keys[-1] == key):
            sub.dropped_coalesced += 1
            self._count("hub/events_coalesced")
            return
        depth = limits.max_queue_depth
        if depth is not None and len(sub._pending_keys) >= depth:
            sub.dropped_overflow += 1
            self._count("hub/events_dropped")
            if not sub._overflow_open:
                sub._overflow_open = True
                sub.overflows += 1
                self._count("hub/queue_overflows")
                when_ns = self._kernel.clock.now_ns + delay_ns
                obs = self._kernel.obs
                if obs.enabled:
                    obs.event("hub/q_overflow", when_ns, topic=sub.topic,
                              dropped=sub.dropped_overflow,
                              pending=len(sub._pending_keys))
                overflow = QueueOverflow(topic=sub.topic, time_ns=when_ns,
                                         dropped=sub.dropped_overflow)
                self._kernel.call_later(delay_ns, _deliver(sub, overflow))
            return
        now_ns = self._kernel.clock.now_ns
        deliver_at = max(now_ns + delay_ns, sub._next_delivery_ns)
        sub._next_delivery_ns = deliver_at + limits.drain_interval_ns
        sub._pending_keys.append(key)
        self._kernel.call_later(deliver_at - now_ns,
                                _deliver_queued(sub, payload))

    def _count(self, name: str) -> None:
        metrics = self._kernel.metrics
        if metrics is not None:
            metrics.counter(name).inc()

    def _remove(self, sub: Subscription) -> None:
        subs = self._subs.get(sub.topic, [])
        if sub in subs:
            subs.remove(sub)
            namespace = self._namespace(sub.topic)
            count = self._namespace_counts.get(namespace, 0)
            if count > 0:
                self._namespace_counts[namespace] = count - 1


def _deliver(sub: Subscription, payload: Any) -> Callable[[], None]:
    """Build a delivery thunk that respects late cancellation."""

    def run() -> None:
        if sub.active:
            sub.handler(payload)

    return run


def _deliver_queued(sub: Subscription, payload: Any) -> Callable[[], None]:
    """Delivery thunk for the bounded path: dequeue, account, deliver.

    A fully drained queue closes the overflow episode, re-arming the
    one-``QueueOverflow``-per-episode latch.
    """

    def run() -> None:
        sub._pending_keys.popleft()
        if not sub._pending_keys:
            sub._overflow_open = False
        if sub.active:
            sub.delivered += 1
            sub.handler(payload)
        else:
            sub.dropped_cancelled += 1

    return run
