"""Discrete-event simulation kernel used by the Android substrate.

The kernel models time in integer nanoseconds (matching the paper's use
of ``SystemClock.elapsedRealtimeNanos()``) and runs *processes* written
as Python generators.  A process yields :class:`Sleep` to advance the
clock, :class:`WaitFor` to block on a :class:`SimEvent`, and returns a
value that becomes its result.

Example
-------
>>> from repro.sim import Kernel, Sleep
>>> kernel = Kernel()
>>> def worker():
...     yield Sleep(1_000)
...     return "done"
>>> proc = kernel.spawn(worker())
>>> kernel.run()
>>> proc.result
'done'
"""

from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel, Process, SimEvent, Sleep, WaitFor
from repro.sim.events import EventHub, Subscription
from repro.sim.rand import DeterministicRandom

__all__ = [
    "SimClock",
    "Kernel",
    "Process",
    "SimEvent",
    "Sleep",
    "WaitFor",
    "EventHub",
    "Subscription",
    "DeterministicRandom",
]
