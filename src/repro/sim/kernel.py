"""The discrete-event kernel: scheduled callbacks and generator processes."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.errors import DeadlockError, SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_RECORDER, NullRecorder
from repro.sim.clock import SimClock


@dataclass(frozen=True)
class Sleep:
    """Yielded by a process to suspend itself for ``duration_ns``."""

    duration_ns: int

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise SimulationError("cannot sleep for a negative duration")


@dataclass(frozen=True)
class WaitFor:
    """Yielded by a process to block until ``event`` is triggered.

    The value passed to :meth:`SimEvent.trigger` becomes the result of
    the ``yield`` expression.  If the event was already triggered the
    process resumes on the next dispatch without advancing the clock.
    """

    event: "SimEvent"


class SimEvent:
    """A one-shot condition that processes can wait on.

    Triggering an already-triggered event is an error unless the event
    was created with ``reusable=True``, in which case each trigger wakes
    the waiters registered since the previous trigger.
    """

    def __init__(self, name: str = "", reusable: bool = False) -> None:
        self.name = name
        self.reusable = reusable
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Mark the event as having happened and wake every waiter."""
        if self.triggered and not self.reusable:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)
        if self.reusable:
            self.triggered = False

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback``; invoked immediately if already triggered."""
        if self.triggered and not self.reusable:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"SimEvent({self.name!r}, {state})"


ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A running generator process managed by the kernel."""

    def __init__(self, kernel: "Kernel", gen: ProcessGenerator, name: str) -> None:
        self._kernel = kernel
        self._gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.completion = SimEvent(name=f"{name}.completion")
        self.spawned_ns = kernel.clock.now_ns
        self.steps = 0
        self._last_step_ns = self.spawned_ns
        # Dispatch fast path: the resume callbacks are bound once here
        # instead of allocating a fresh closure on every yield, and the
        # metrics branch compiles down to one precomputed flag check.
        self._observed = kernel.metrics is not None
        self._resume = self._step            # 1-arg: event waiters
        self._resume_none = self._step_none  # 0-arg: timers

    def _step_none(self) -> None:
        self._step(None)

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield and act on what it asks for."""
        if self._observed:
            kernel = self._kernel
            observe = kernel._observe_step
            if observe is None:
                observe = kernel._observe_step = kernel.metrics.bind_histogram(
                    "kernel/step_latency_ns")
            now_ns = kernel.clock.now_ns
            observe(now_ns - self._last_step_ns)
            self._last_step_ns = now_ns
        self.steps += 1
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:  # propagate app bugs to the caller
            self._finish(error=exc)
            return
        if isinstance(yielded, Sleep):
            self._kernel.call_later(yielded.duration_ns, self._resume_none)
        elif isinstance(yielded, WaitFor):
            yielded.event.add_waiter(self._resume)
        elif isinstance(yielded, Process):
            yielded.completion.add_waiter(self._resume)
        elif yielded is None:
            self._kernel.call_later(0, self._resume_none)
        else:
            self._finish(
                error=SimulationError(
                    f"process {self.name!r} yielded unsupported value {yielded!r}"
                )
            )

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.done = True
        self.result = result
        self.error = error
        self._kernel._active_processes.discard(self)
        kernel = self._kernel
        if kernel.obs.enabled:
            kernel.obs.span(
                "kernel/process", self.spawned_ns, kernel.clock.now_ns,
                process=self.name, steps=self.steps,
                error=type(error).__name__ if error is not None else "")
        if kernel.metrics is not None:
            inc_finished = kernel._inc_finished
            if inc_finished is None:
                inc_finished = kernel._inc_finished = kernel.metrics.bind_counter(
                    "kernel/processes_finished")
            inc_finished()
            if error is not None:
                kernel.metrics.counter("kernel/processes_failed").inc()
        self.completion.trigger(result)
        if error is not None:
            self._kernel._failures.append((self, error))

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class Kernel:
    """Event loop owning the clock, the event queue and all processes.

    ``recorder``/``metrics`` switch on observability: process-lifetime
    spans go to the recorder, dispatch counts / queue-depth high-water /
    per-step latency go to the registry.  Both default to off
    (:data:`~repro.obs.trace.NULL_RECORDER` and ``None``), costing hot
    paths a single attribute check.
    """

    def __init__(self, clock: Optional[SimClock] = None,
                 recorder: Optional[NullRecorder] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.clock = clock or SimClock()
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.metrics = metrics
        self._queue: List[Any] = []
        self._sequence = itertools.count()
        self._active_processes: set = set()
        self._failures: List[Any] = []
        self._process_count = itertools.count(1)
        # Bound-instrument handles, resolved on first use so metric
        # names appear in snapshots exactly when the legacy per-call
        # registry lookups would have created them.
        self._observe_step: Optional[Callable[[int], None]] = None
        self._inc_finished: Optional[Callable[..., None]] = None
        self._account_bound: Optional[tuple] = None

    # -- scheduling ---------------------------------------------------------

    def call_at(self, when_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute simulated time ``when_ns``."""
        if when_ns < self.clock.now_ns:
            raise SimulationError("cannot schedule an event in the past")
        heapq.heappush(self._queue, (when_ns, next(self._sequence), callback))

    def call_later(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay_ns`` nanoseconds from now."""
        self.call_at(self.clock.now_ns + delay_ns, callback)

    def spawn(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Start a generator as a process; it runs on the next dispatch."""
        proc = Process(self, gen, name or f"proc-{next(self._process_count)}")
        self._active_processes.add(proc)
        self.call_later(0, lambda: proc._step(None))
        return proc

    # -- execution ----------------------------------------------------------

    def run(self, until_ns: Optional[int] = None, max_events: int = 10_000_000) -> int:
        """Dispatch queued events until the queue drains.

        Args:
            until_ns: stop (leaving later events queued) once the next
                event lies beyond this time.
            max_events: safety valve against runaway loops.

        Returns:
            The number of events dispatched.

        Raises:
            DeadlockError: if processes are still alive but no events
                remain, meaning they wait on events nobody will trigger.
            SimulationError: if ``max_events`` events were dispatched
                and more remain queued (a runaway loop).  Draining the
                queue with exactly ``max_events`` dispatches is fine.
        """
        track = self.metrics is not None
        queue_peak = 0
        dispatched = 0
        queue = self._queue
        heappop = heapq.heappop
        while queue:
            if track and len(queue) > queue_peak:
                queue_peak = len(queue)
            when_ns = queue[0][0]
            if until_ns is not None and when_ns > until_ns:
                self.clock.advance_to(until_ns)
                if track:
                    self._account_run(dispatched, queue_peak)
                return dispatched
            self.clock.advance_to(when_ns)
            callback = heappop(queue)[2]
            callback()
            dispatched += 1
            if dispatched >= max_events and queue:
                raise SimulationError(
                    f"exceeded {max_events} events; likely a livelock")
            # Batch sweep: every event queued for this same timestamp
            # (including ones the callbacks schedule *at* it, which
            # sort after by sequence number) dispatches without
            # re-checking ``until_ns`` or re-advancing the clock —
            # ``when_ns <= until_ns`` already held above.
            while queue and queue[0][0] == when_ns:
                if track and len(queue) > queue_peak:
                    queue_peak = len(queue)
                callback = heappop(queue)[2]
                callback()
                dispatched += 1
                if dispatched >= max_events and queue:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a livelock")
        if track:
            self._account_run(dispatched, queue_peak)
        if until_ns is not None:
            self.clock.advance_to(until_ns)
        if self._active_processes and until_ns is None:
            stuck = sorted(proc.name for proc in self._active_processes)
            raise DeadlockError(f"processes still waiting with empty queue: {stuck}")
        return dispatched

    def _account_run(self, dispatched: int, queue_peak: int) -> None:
        """Fold one ``run`` call's dispatch accounting into the registry."""
        bound = self._account_bound
        if bound is None:
            bound = self._account_bound = (
                self.metrics.bind_counter("kernel/events_dispatched"),
                self.metrics.bind_counter("kernel/run_calls"),
                self.metrics.bind_gauge("kernel/queue_depth_peak"),
            )
        inc_dispatched, inc_runs, set_peak = bound
        inc_dispatched(dispatched)
        inc_runs()
        set_peak(queue_peak)

    def run_process(self, gen: ProcessGenerator, name: str = "") -> Any:
        """Spawn ``gen``, run to completion, and return its result.

        Re-raises any exception the process died with, so test code sees
        app failures directly.
        """
        proc = self.spawn(gen, name=name)
        self.run()
        if proc.error is not None:
            raise proc.error
        return proc.result

    @property
    def failures(self) -> List[Any]:
        """(process, exception) pairs for processes that died with errors."""
        return list(self._failures)

    def check_failures(self) -> None:
        """Raise the first recorded process failure, if any."""
        if self._failures:
            _proc, error = self._failures[0]
            raise error

    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"Kernel(now_ns={self.clock.now_ns}, queued={len(self._queue)}, "
            f"active={len(self._active_processes)})"
        )
