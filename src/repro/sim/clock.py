"""Simulated monotonic clock with nanosecond resolution."""

from __future__ import annotations

from repro.errors import SimulationError

NANOS_PER_MICRO = 1_000
NANOS_PER_MILLI = 1_000_000
NANOS_PER_SECOND = 1_000_000_000


def millis(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(value * NANOS_PER_MILLI)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(value * NANOS_PER_SECOND)


class SimClock:
    """A monotonic simulated clock.

    The clock only moves forward, and only when the kernel dispatches an
    event scheduled in the future.  This mirrors
    ``SystemClock.elapsedRealtimeNanos()`` on Android, which the paper
    uses for its performance measurements.
    """

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise SimulationError("clock cannot start before t=0")
        self._now_ns = start_ns

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds since boot."""
        return self._now_ns

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds (float, for reports)."""
        return self._now_ns / NANOS_PER_MILLI

    def advance_to(self, when_ns: int) -> None:
        """Move the clock forward to ``when_ns``.

        Raises:
            SimulationError: if ``when_ns`` is in the past.
        """
        if when_ns < self._now_ns:
            raise SimulationError(
                f"clock cannot move backwards ({when_ns} < {self._now_ns})"
            )
        self._now_ns = when_ns

    def __repr__(self) -> str:
        return f"SimClock(now_ns={self._now_ns})"
