"""Seeded randomness helpers.

Everything stochastic in the library (corpus generation, APK name
randomization, workload jitter) flows through
:class:`DeterministicRandom` so experiments are exactly repeatable from
a seed, as the benchmark harness requires.
"""

from __future__ import annotations

import hashlib
import random
import string
from typing import List, Sequence, TypeVar

T = TypeVar("T")

_ALNUM = string.ascii_lowercase + string.digits

#: The :meth:`DeterministicRandom.token` alphabet, public for callers
#: that derive token-shaped strings outside this class (e.g. the corpus
#: redirect-URL generator).
TOKEN_ALPHABET = _ALNUM


class DeterministicRandom:
    """A thin, explicit wrapper over :class:`random.Random`."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent child stream keyed by ``label``.

        Forking keeps unrelated consumers (e.g. corpus generation and
        attack jitter) from perturbing each other's sequences when one
        of them draws more numbers.  The derivation uses a *stable*
        hash — Python's built-in ``hash()`` is salted per process and
        would break cross-run reproducibility.
        """
        digest = hashlib.sha256(
            f"{self.seed}:{label}".encode("utf-8")
        ).digest()
        child_seed = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
        return DeterministicRandom(child_seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Bernoulli draw."""
        return self._rng.random() < probability

    def choice(self, options: Sequence[T]) -> T:
        """Pick one element uniformly.

        Implemented over raw ``getrandbits`` with the exact rejection
        loop ``random.Random._randbelow_with_getrandbits`` runs, so the
        underlying Mersenne-Twister stream advances identically to
        ``random.Random.choice`` — corpus derivations stay byte-stable
        — while skipping that path's Python-level indirection (this is
        the corpus generator's hottest call).
        """
        size = len(options)
        if not size:
            raise IndexError("Cannot choose from an empty sequence")
        getrandbits = self._rng.getrandbits
        bits = size.bit_length()
        value = getrandbits(bits)
        while value >= size:
            value = getrandbits(bits)
        return options[value]

    def sample(self, options: Sequence[T], count: int) -> List[T]:
        """Pick ``count`` distinct elements."""
        return self._rng.sample(list(options), count)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def token(self, length: int = 12) -> str:
        """Random lowercase alphanumeric token (APK name randomization).

        Same stream contract as :meth:`choice`: one 6-bit
        ``getrandbits`` rejection loop per character, exactly what
        ``choice(_ALNUM)`` used to consume, just without the per-char
        wrapper overhead.
        """
        getrandbits = self._rng.getrandbits
        chars = []
        for _ in range(length):
            value = getrandbits(6)
            while value >= 36:  # len(_ALNUM); 6 == (36).bit_length()
                value = getrandbits(6)
            chars.append(_ALNUM[value])
        return "".join(chars)

    def weighted_choice(self, options: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with the given relative weights."""
        return self._rng.choices(list(options), weights=list(weights), k=1)[0]
