"""The IntentFirewall: where every startActivity Intent is inspected.

Stock behaviour is pass-through with a record of what went by.  The
paper's two Step-1 defenses install themselves here:

- the redirect-Intent *detector* registers an inspector that compares
  consecutive Intents to the same recipient (Section V-C,
  "Redirect Intent attack detection"),
- the *origin scheme* registers an inspector that stamps the sender's
  package name into the Intent's hidden ``mIntentOrigin`` field.

Inspectors run inside ``check_intent`` in registration order; any
inspector may veto delivery or raise an alarm without vetoing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.android.intents import Intent


@dataclass(frozen=True)
class IntentRecord:
    """What the firewall knows about one in-flight Intent (class IR)."""

    intent: Intent
    sender_package: str
    sender_uid: int
    sender_is_system: bool
    recipient_package: str
    delivery_time_ns: int


@dataclass
class InspectionResult:
    """Outcome of one inspector on one Intent."""

    allow: bool = True
    alarm: Optional[str] = None


Inspector = Callable[[IntentRecord], InspectionResult]


class IntentFirewall:
    """Inspection pipeline for activity-start Intents."""

    def __init__(self) -> None:
        self._inspectors: List[Inspector] = []
        self.records: List[IntentRecord] = []
        self.alarms: List[str] = []
        self.blocked: List[IntentRecord] = []

    def add_inspector(self, inspector: Inspector) -> None:
        """Install a defense inspector (runs on every Intent)."""
        self._inspectors.append(inspector)

    def check_intent(self, record: IntentRecord) -> bool:
        """Run all inspectors; returns False if delivery must be blocked."""
        self.records.append(record)
        allowed = True
        for inspector in self._inspectors:
            result = inspector(record)
            if result.alarm is not None:
                self.alarms.append(result.alarm)
            if not result.allow:
                allowed = False
        if not allowed:
            self.blocked.append(record)
        return allowed

    def alarm_count(self) -> int:
        """Number of alarms raised so far."""
        return len(self.alarms)
