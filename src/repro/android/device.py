"""Device profiles: the hardware/firmware context of one simulated phone.

Profiles capture what the paper's measurement study showed matters:
vendor (hence platform key), carrier (hence which bloatware installers
are pre-installed), Android version (hence the Download Manager's
symlink behaviour and the runtime-permission model), and internal
storage size (hence whether internal-storage installs are viable —
the low-end-device pressure of Section II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.android.download_manager import SymlinkMode
from repro.android.storage import GB
from repro.sim.events import WatchLimits


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of a device model + firmware build."""

    vendor: str
    model: str
    carrier: str = "unlocked"
    android_version: str = "5.1"
    internal_capacity_bytes: int = 16 * GB
    internal_used_bytes: int = 6 * GB
    external_capacity_bytes: int = 32 * GB
    region: str = "US"
    #: Firmware-level inotify loss model applied to every FileObserver
    #: on the device (``None`` = lossless, the historical behaviour).
    watch_limits: Optional[WatchLimits] = None

    @property
    def runtime_permissions(self) -> bool:
        """Android >= 6.0 uses the runtime permission model."""
        return self._version_tuple() >= (6, 0)

    @property
    def dm_symlink_mode(self) -> SymlinkMode:
        """How this build's Download Manager treats symlinked paths."""
        if self._version_tuple() >= (6, 0):
            return SymlinkMode.CHECK_THEN_USE
        return SymlinkMode.LEXICAL

    @property
    def free_internal_bytes(self) -> int:
        """Internal space available at first boot."""
        return self.internal_capacity_bytes - self.internal_used_bytes

    def _version_tuple(self) -> Tuple[int, int]:
        parts = self.android_version.split(".")
        major = int(parts[0])
        minor = int(parts[1]) if len(parts) > 1 else 0
        return (major, minor)


def galaxy_s6_edge_verizon() -> DeviceProfile:
    """The paper's DTIgnite testbed: Galaxy S6 Edge on Verizon."""
    return DeviceProfile(
        vendor="samsung",
        model="SM-G925V",
        carrier="verizon",
        android_version="5.1",
        internal_capacity_bytes=32 * GB,
        internal_used_bytes=12 * GB,
    )


def galaxy_j5_lowend() -> DeviceProfile:
    """A low-end 8 GB device with ~2.5 GB free — Section II's example."""
    return DeviceProfile(
        vendor="samsung",
        model="SM-J500",
        carrier="unlocked",
        android_version="5.1",
        internal_capacity_bytes=8 * GB,
        internal_used_bytes=8 * GB - int(2.5 * GB),
    )


def nexus5() -> DeviceProfile:
    """The paper's defense-evaluation device (Android 5.1)."""
    return DeviceProfile(
        vendor="google",
        model="Nexus 5",
        android_version="5.1",
        internal_capacity_bytes=16 * GB,
        internal_used_bytes=5 * GB,
    )


def nexus5_marshmallow() -> DeviceProfile:
    """Nexus 5 on Android 6.0: runtime permissions + re-checking DM."""
    return DeviceProfile(
        vendor="google",
        model="Nexus 5",
        android_version="6.0",
        internal_capacity_bytes=16 * GB,
        internal_used_bytes=5 * GB,
    )


def xiaomi_mi4() -> DeviceProfile:
    """A Xiaomi device shipping the Xiaomi appstore."""
    return DeviceProfile(
        vendor="xiaomi",
        model="MI 4",
        carrier="china-mobile",
        android_version="4.4",
        internal_capacity_bytes=16 * GB,
        internal_used_bytes=7 * GB,
        region="CN",
    )


def galaxy_s2_ics() -> DeviceProfile:
    """An Ice-Cream-Sandwich device (Android 4.0.3): logcat still open.

    The baseline logcat attack (Related Work [14]) only works on builds
    like this one, where third-party apps may hold READ_LOGS.
    """
    return DeviceProfile(
        vendor="samsung",
        model="GT-I9100",
        carrier="unlocked",
        android_version="4.0.3",
        internal_capacity_bytes=16 * GB,
        internal_used_bytes=8 * GB,
    )


def galaxy_note3() -> DeviceProfile:
    """The paper's Hare-attack testbed (S-Voice / Link permissions)."""
    return DeviceProfile(
        vendor="samsung",
        model="SM-N900",
        carrier="tmobile",
        android_version="4.4",
        internal_capacity_bytes=32 * GB,
        internal_used_bytes=14 * GB,
    )
