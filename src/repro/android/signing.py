"""APK signing: keys, certificates and signatures.

A deterministic stand-in for Java's jarsigner machinery.  A
:class:`SigningKey` signs byte strings; the corresponding
:class:`Certificate` is the key's public fingerprint.  The model
reproduces what matters to the paper:

- package updates must carry the same certificate as the installed
  package (signature continuity, enforced by the PMS),
- every app signed with a vendor's *platform key* is eligible for
  ``signature``/``signatureOrSystem`` permissions on that vendor's
  devices — and the measurement study found each vendor uses **one**
  platform key across all models (Section IV-B), which powers the
  privilege-escalation attacks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def _digest(*parts: bytes) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.hexdigest()


# Signature cache shared per-process: signatures are a pure function of
# (key fingerprint, content) and keys are deterministic from
# (owner, key_id), so two SigningKey instances with the same identity
# may share signature objects.  Fleet campaigns sign the same few
# packages once per install without this.
_SIGN_CACHE_CAP = 4096
_SIGN_CACHE: dict = {}


def clear_signature_cache() -> None:
    """Drop the process-wide signature cache (test isolation hook)."""
    _SIGN_CACHE.clear()


@dataclass(frozen=True)
class Certificate:
    """The public identity of a signing key."""

    fingerprint: str
    owner: str

    def __str__(self) -> str:
        return f"{self.owner}:{self.fingerprint[:12]}"


@dataclass(frozen=True)
class Signature:
    """A signature over some content by some key."""

    certificate: Certificate
    value: str

    def matches(self, content: bytes) -> bool:
        """True if this signature is valid for ``content``."""
        expected = _digest(self.certificate.fingerprint.encode("ascii"), content)
        return self.value == expected


class SigningKey:
    """A private signing key.

    Keys are deterministic from ``(owner, key_id)`` so corpus generation
    is reproducible, but the signature scheme is structurally faithful:
    only the holder of the key object can produce signatures that verify
    against its certificate.
    """

    def __init__(self, owner: str, key_id: str) -> None:
        self.owner = owner
        self.key_id = key_id
        fingerprint = _digest(b"key", owner.encode("utf-8"), key_id.encode("utf-8"))
        self._certificate = Certificate(fingerprint=fingerprint, owner=owner)

    @property
    def certificate(self) -> Certificate:
        """The public certificate for this key."""
        return self._certificate

    def sign(self, content: bytes) -> Signature:
        """Produce a signature over ``content`` (content-addressed cache)."""
        cache_key = (self._certificate.fingerprint, content)
        cached = _SIGN_CACHE.get(cache_key)
        if cached is not None:
            return cached
        value = _digest(self._certificate.fingerprint.encode("ascii"), content)
        signature = Signature(certificate=self._certificate, value=value)
        if len(_SIGN_CACHE) >= _SIGN_CACHE_CAP:
            _SIGN_CACHE.clear()
        _SIGN_CACHE[cache_key] = signature
        return signature

    def __repr__(self) -> str:
        return f"SigningKey(owner={self.owner!r}, key_id={self.key_id!r})"


def platform_key(vendor: str) -> SigningKey:
    """The single platform key of ``vendor``.

    Deliberately one key per vendor — the measurement study's finding
    that Samsung/Huawei/Xiaomi each sign *every* device model and many
    store apps with one key (Section IV-B).
    """
    return SigningKey(owner=vendor, key_id="platform")
