"""The App base class: how behaviour attaches to an installed package.

An :class:`App` is the runtime side of an installed package — installer
apps, attack apps and the DAPP defense all subclass it.  It offers the
slice of the Android SDK the paper's actors use: file I/O performed *as
the app's UID with the app's granted permissions*, ``FileObserver``,
activity starts, broadcasts, the Download Manager and runtime permission
requests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from repro.errors import AndroidError
from repro.android.fileobserver import FileObserver
from repro.android.filesystem import Caller, FileEventType
from repro.android.intents import Intent


class App:
    """Base class for all simulated application behaviour."""

    package: str = ""

    def __init__(self, package: Optional[str] = None) -> None:
        if package is not None:
            self.package = package
        if not self.package:
            raise AndroidError("App subclasses must define a package name")
        self.system: Any = None  # set by AndroidSystem.attach

    # -- lifecycle -------------------------------------------------------------

    def attach(self, system: Any) -> None:
        """Bind this behaviour to ``system`` (called by AndroidSystem)."""
        self.system = system
        system.ams.register_app(self.package, intent_handler=self.handle_intent,
                                app=self)
        self.on_attached()

    def on_attached(self) -> None:
        """Hook: runs once the app is registered with the AMS."""

    def on_background_killed(self) -> None:
        """Hook: the process was killed via KILL_BACKGROUND_PROCESSES."""

    def handle_intent(self, intent: Intent) -> None:
        """Hook: an activity Intent was delivered to this app."""

    # -- identity ----------------------------------------------------------------

    @property
    def caller(self) -> Caller:
        """The app's current security principal (fresh permission snapshot)."""
        installed = self.system.pms.require_package(self.package)
        return Caller(
            uid=installed.uid,
            package=self.package,
            permissions=frozenset(installed.permissions.granted),
        )

    @property
    def uid(self) -> int:
        """The app's Linux UID."""
        return self.system.pms.require_package(self.package).uid

    def has_permission(self, permission: str) -> bool:
        """True if the app currently holds ``permission``."""
        return self.system.pms.check_permission(permission, self.package)

    def request_permission(self, permission: str, user_approves: bool = True) -> bool:
        """Runtime permission request (honours the same-group silent grant)."""
        installed = self.system.pms.require_package(self.package)
        return installed.permissions.request(permission, user_approves)

    # -- storage -------------------------------------------------------------------

    @property
    def private_dir(self) -> str:
        """The app's internal-storage sandbox directory."""
        return self.system.layout.app_private_dir(self.package)

    def read_file(self, path: str) -> bytes:
        """Read ``path`` as this app."""
        return self.system.fs.read_bytes(path, self.caller)

    def write_file(self, path: str, data: bytes, mode: int = 0o644) -> None:
        """Write ``path`` as this app."""
        self.system.fs.write_bytes(path, self.caller, data, mode=mode)

    def delete_file(self, path: str) -> None:
        """Unlink ``path`` as this app."""
        self.system.fs.unlink(path, self.caller)

    def move_file(self, src: str, dst: str) -> None:
        """Rename/move as this app (triggers MOVED_TO at the destination)."""
        self.system.fs.rename(src, dst, self.caller)

    def make_dirs(self, path: str) -> None:
        """mkdir -p as this app."""
        self.system.fs.makedirs(path, self.caller)

    def set_world_readable(self, path: str) -> None:
        """``setReadable()`` — the step secure internal-storage installers need."""
        current = self.system.fs.stat(path).mode
        self.system.fs.chmod(path, current | 0o004, self.caller)

    def file_observer(self, directory: str,
                      mask: Optional[Iterable[FileEventType]] = None) -> FileObserver:
        """Create a FileObserver on ``directory`` (requires no permission).

        The observer inherits the device's inotify loss model
        (``system.watch_limits``) — apps cannot opt out of firmware
        queue bounds any more than real ones can.
        """
        return FileObserver(self.system.hub, directory, mask=mask,
                            limits=self.system.watch_limits)

    # -- IPC --------------------------------------------------------------------------

    def start_activity(self, intent: Intent) -> bool:
        """``Context.startActivity`` through the AMS and IntentFirewall."""
        return self.system.ams.start_activity(self.caller, intent)

    def send_broadcast(self, action: str, extras: Optional[Dict[str, Any]] = None) -> int:
        """Broadcast to registered receivers."""
        return self.system.ams.send_broadcast(self.caller, action, extras)

    def register_receiver(self, action: str, handler: Callable,
                          required_permission: Optional[str] = None,
                          exported: bool = True) -> None:
        """Register a broadcast receiver owned by this app."""
        self.system.ams.register_receiver(
            self.package, action, handler,
            required_permission=required_permission, exported=exported,
        )

    # -- download manager ----------------------------------------------------------------

    def enqueue_download(self, url: str, destination: str) -> int:
        """Ask the Download Manager to fetch ``url`` to ``destination``."""
        return self.system.dm.enqueue(self.caller, url, destination)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(package={self.package!r})"
