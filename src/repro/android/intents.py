"""Intents: the messages that start activities and carry commands.

Reproduces the property at the root of the redirect-Intent attack
(Section III-D): a delivered Intent does **not** tell the recipient who
sent it.  ``origin`` stays ``None`` unless the Intent-origin defense
(Section V-C) is installed in the IntentFirewall, which populates it via
the hidden ``set_intent_origin`` API.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

ACTION_VIEW = "android.intent.action.VIEW"
ACTION_MAIN = "android.intent.action.MAIN"

FLAG_ACTIVITY_SINGLE_TOP = 0x20000000


@dataclass
class Intent:
    """A (simplified) android.content.Intent."""

    action: str = ACTION_VIEW
    target_package: str = ""
    target_activity: str = ""
    data: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)
    flags: int = 0
    intent_id: int = field(default_factory=lambda: next(_intent_ids))
    # Hidden field added by the paper's defense (mIntentOrigin).
    _origin: Optional[str] = None

    @property
    def single_top(self) -> bool:
        """True if FLAG_ACTIVITY_SINGLE_TOP is set."""
        return bool(self.flags & FLAG_ACTIVITY_SINGLE_TOP)

    def with_extra(self, key: str, value: Any) -> "Intent":
        """Fluent helper: set an extra and return self."""
        self.extras[key] = value
        return self

    def get_intent_origin(self) -> Optional[str]:
        """Hidden API: the sender's package name, if the defense set it."""
        return self._origin

    def set_intent_origin(self, origin: str) -> None:
        """Hidden API used by the modified IntentFirewall."""
        self._origin = origin

    def __repr__(self) -> str:
        target = self.target_package or "<unresolved>"
        return f"Intent({self.action!r} -> {target}/{self.target_activity})"


_intent_ids = itertools.count(1)
