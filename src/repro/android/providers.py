"""Content providers: permission-guarded data interfaces.

The Hare privilege escalation (Section III-B) targets exactly this
mechanism: a provider guards the user's data behind a permission name,
and the check is only as strong as *who owns that name's definition*.
When the permission is undefined (a Hare), the first app to define it —
at whatever protection level it likes — mints its own access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import AndroidError, SecurityException
from repro.android.filesystem import Caller


@dataclass
class ProviderRegistration:
    """One registered content provider."""

    authority: str
    owner_package: str
    read_permission: Optional[str] = None
    write_permission: Optional[str] = None
    rows: List[Any] = field(default_factory=list)


class ContentResolver:
    """The device-wide provider registry and access mediator."""

    def __init__(self, pms: "object") -> None:
        self._pms = pms
        self._providers: Dict[str, ProviderRegistration] = {}

    def register(self, authority: str, owner_package: str,
                 read_permission: Optional[str] = None,
                 write_permission: Optional[str] = None,
                 rows: Optional[List[Any]] = None) -> ProviderRegistration:
        """Register a provider under ``authority``."""
        if authority in self._providers:
            raise AndroidError(f"authority {authority!r} already registered")
        registration = ProviderRegistration(
            authority=authority,
            owner_package=owner_package,
            read_permission=read_permission,
            write_permission=write_permission,
            rows=list(rows or []),
        )
        self._providers[authority] = registration
        return registration

    def unregister_by(self, package: str) -> None:
        """Drop every provider owned by ``package`` (on uninstall)."""
        for authority in [
            authority
            for authority, registration in self._providers.items()
            if registration.owner_package == package
        ]:
            del self._providers[authority]

    def query(self, caller: Caller, authority: str) -> List[Any]:
        """Read the provider's rows, enforcing its read permission.

        The check asks the PMS whether the *caller's package* holds the
        guarding permission.  Note what is NOT checked: who defined the
        permission — the gap Hare grabbing drives through.
        """
        registration = self._require(authority)
        self._enforce(caller, registration.read_permission, authority, "read")
        return list(registration.rows)

    def insert(self, caller: Caller, authority: str, row: Any) -> None:
        """Append a row, enforcing the write permission."""
        registration = self._require(authority)
        self._enforce(caller, registration.write_permission, authority, "write")
        registration.rows.append(row)

    def has_provider(self, authority: str) -> bool:
        """True if ``authority`` is registered."""
        return authority in self._providers

    # -- internals ----------------------------------------------------------------

    def _require(self, authority: str) -> ProviderRegistration:
        registration = self._providers.get(authority)
        if registration is None:
            raise AndroidError(f"no provider for authority {authority!r}")
        return registration

    def _enforce(self, caller: Caller, permission: Optional[str],
                 authority: str, operation: str) -> None:
        if permission is None or caller.is_system:
            return
        registration = self._providers[authority]
        if caller.package == registration.owner_package:
            return
        if not self._pms.check_permission(permission, caller.package):
            raise SecurityException(
                f"{caller.package} may not {operation} {authority}: "
                f"requires {permission}"
            )
