"""The installed-package database."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import PackageNotFound
from repro.android.apk import AndroidManifest
from repro.android.filesystem import FIRST_APP_UID
from repro.android.permissions import PermissionRegistry, PermissionState
from repro.android.signing import Certificate


@dataclass
class InstalledPackage:
    """One installed application as the PMS sees it."""

    package: str
    version_code: int
    certificate: Certificate
    manifest: AndroidManifest
    uid: int
    permissions: PermissionState
    is_system: bool = False
    installer_package: str = ""
    installed_ns: int = 0
    payload: bytes = b""

    @property
    def label(self) -> str:
        """User-visible app name."""
        return self.manifest.label

    def __repr__(self) -> str:
        kind = "system" if self.is_system else "user"
        return f"InstalledPackage({self.package!r} v{self.version_code}, {kind})"


class PackageDatabase:
    """Package-name keyed store with UID allocation."""

    def __init__(self, registry: PermissionRegistry) -> None:
        self._registry = registry
        self._packages: Dict[str, InstalledPackage] = {}
        self._next_uid = itertools.count(FIRST_APP_UID)

    def allocate_uid(self) -> int:
        """Hand out the next app UID."""
        return next(self._next_uid)

    def add(self, package: InstalledPackage) -> None:
        """Register a freshly installed (or updated) package."""
        self._packages[package.package] = package

    def remove(self, name: str) -> InstalledPackage:
        """Remove and return the package; raises if absent."""
        package = self._packages.pop(name, None)
        if package is None:
            raise PackageNotFound(name)
        return package

    def get(self, name: str) -> Optional[InstalledPackage]:
        """The package, or None if not installed."""
        return self._packages.get(name)

    def require(self, name: str) -> InstalledPackage:
        """The package; raises :class:`PackageNotFound` if absent."""
        package = self._packages.get(name)
        if package is None:
            raise PackageNotFound(name)
        return package

    def is_installed(self, name: str) -> bool:
        """True if ``name`` is installed."""
        return name in self._packages

    def all_packages(self) -> List[InstalledPackage]:
        """All installed packages, sorted by name."""
        return [self._packages[name] for name in sorted(self._packages)]

    def system_packages(self) -> List[InstalledPackage]:
        """Installed packages flagged as part of the system image."""
        return [pkg for pkg in self.all_packages() if pkg.is_system]

    def by_uid(self, uid: int) -> Optional[InstalledPackage]:
        """Look a package up by its Linux UID."""
        for package in self._packages.values():
            if package.uid == uid:
                return package
        return None

    def __len__(self) -> int:
        return len(self._packages)
