"""AndroidSystem: one fully wired simulated device.

The facade constructs and connects every substrate component for a given
:class:`~repro.android.device.DeviceProfile`: kernel + clock, VFS with
internal (app-sandbox DAC) and external (FUSE daemon) mounts, permission
registry, PMS, PIA, Download Manager, AMS with IntentFirewall, /proc and
the network.  Scenario code then installs apps, attaches behaviours and
runs the event loop.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.android.ams import ActivityManagerService
from repro.android.apk import Apk
from repro.android.app import App
from repro.android.device import DeviceProfile, nexus5
from repro.android.download_manager import DownloadManager
from repro.android.filesystem import Caller, Filesystem, SYSTEM_UID
from repro.android.fuse import FuseDaemon
from repro.android.intent_firewall import IntentFirewall
from repro.android.logcat import Logcat
from repro.android.network import Network
from repro.android.packages import InstalledPackage, PackageDatabase
from repro.android.permissions import PermissionRegistry
from repro.android.pia import PackageInstallerActivity
from repro.android.pms import PackageManagerService
from repro.android.proc import ProcFs
from repro.android.providers import ContentResolver
from repro.android.signing import SigningKey, platform_key
from repro.android.storage import (
    InternalStoragePolicy,
    StorageLayout,
    StorageVolume,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_RECORDER, NullRecorder
from repro.sim import DeterministicRandom, EventHub, Kernel


class AndroidSystem:
    """A booted simulated Android device.

    ``recorder``/``metrics`` switch on observability for the whole
    device (kernel, installers, defenses); both default to off.
    """

    def __init__(self, profile: Optional[DeviceProfile] = None, seed: int = 7,
                 recorder: Optional[NullRecorder] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.profile = profile or nexus5()
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.metrics = metrics
        self.kernel = Kernel(recorder=self.obs, metrics=metrics)
        self.hub = EventHub(self.kernel)
        #: Device-wide inotify loss model (None = lossless); every
        #: FileObserver created through App.file_observer inherits it.
        self.watch_limits = self.profile.watch_limits
        self.rng = DeterministicRandom(seed)
        self.layout = StorageLayout()
        self.fs = Filesystem(self.hub, self.kernel.clock)
        self.internal_volume = StorageVolume(
            "internal",
            self.profile.internal_capacity_bytes,
            used_bytes=self.profile.internal_used_bytes,
        )
        self.external_volume = StorageVolume(
            "external", self.profile.external_capacity_bytes
        )
        self.fs.mount(
            self.layout.internal_root,
            self.internal_volume,
            InternalStoragePolicy(self.layout),
        )
        self.fuse_daemon = FuseDaemon()
        self.fs.mount(self.layout.external_root, self.external_volume, self.fuse_daemon)
        self._system_caller = Caller(uid=SYSTEM_UID, package="android", is_system=True)
        self.fs.makedirs(self.layout.app_data_root, self._system_caller)
        self.fs.makedirs(self.layout.app_install_root, self._system_caller)

        self.platform_key: SigningKey = platform_key(self.profile.vendor)
        self.permission_registry = PermissionRegistry()
        self.package_db = PackageDatabase(self.permission_registry)
        self.pms = PackageManagerService(
            fs=self.fs,
            hub=self.hub,
            database=self.package_db,
            registry=self.permission_registry,
            layout=self.layout,
            internal_volume=self.internal_volume,
            platform_certificate=self.platform_key.certificate,
        )
        self.logcat = Logcat(self.hub, self.kernel.clock,
                             self.profile.android_version)
        self.pia = PackageInstallerActivity(self.pms, logcat=self.logcat)
        self.network = Network()
        self.dm = DownloadManager(
            kernel=self.kernel,
            fs=self.fs,
            hub=self.hub,
            network=self.network,
            layout=self.layout,
            symlink_mode=self.profile.dm_symlink_mode,
        )
        self.content_resolver = ContentResolver(self.pms)
        # Providers die with their owning package.
        self.hub.subscribe(
            "broadcast:android.intent.action.PACKAGE_REMOVED",
            lambda broadcast: self.content_resolver.unregister_by(
                broadcast.package
            ),
        )
        self.procfs = ProcFs()
        self.firewall = IntentFirewall()
        self.ams = ActivityManagerService(
            self.kernel, self.hub, self.firewall, self.procfs
        )

    # -- time and execution -----------------------------------------------------

    @property
    def now_ns(self) -> int:
        """Current simulated time."""
        return self.kernel.clock.now_ns

    def run(self, until_ns: Optional[int] = None) -> int:
        """Drain the event queue (optionally only up to ``until_ns``)."""
        return self.kernel.run(until_ns=until_ns)

    def run_process(self, gen: Generator, name: str = "") -> object:
        """Spawn a process, run to completion, return its result."""
        return self.kernel.run_process(gen, name=name)

    # -- provisioning -------------------------------------------------------------

    def install_system_app(self, apk: Apk) -> InstalledPackage:
        """Install ``apk`` as part of the system image (pre-install)."""
        return self.pms.install_parsed(apk, installer_package="system-image",
                                       as_system_app=True)

    def install_user_app(self, apk: Apk, installer: str = "sideload") -> InstalledPackage:
        """Install ``apk`` directly (bypassing any AIT — provisioning only)."""
        return self.pms.install_parsed(apk, installer_package=installer)

    def attach(self, app: App) -> App:
        """Attach an :class:`App` behaviour to its installed package."""
        self.pms.require_package(app.package)  # fail fast if not installed
        app.attach(self)
        return app

    def caller_for(self, package: str) -> Caller:
        """Security principal of an installed package (fresh snapshot)."""
        installed = self.pms.require_package(package)
        return Caller(
            uid=installed.uid,
            package=package,
            permissions=frozenset(installed.permissions.granted),
        )

    @property
    def system_caller(self) -> Caller:
        """The privileged system principal (DM, PMS internals, settings UI)."""
        return self._system_caller

    def __repr__(self) -> str:
        return (
            f"AndroidSystem({self.profile.vendor}/{self.profile.model}, "
            f"android={self.profile.android_version}, "
            f"packages={len(self.package_db)})"
        )
