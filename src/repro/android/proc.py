"""The /proc side channel.

``/proc/<pid>/oom_adj`` is world-readable on the Android versions the
paper studies; its value is 0 while the process owns the foreground.
The redirect-Intent attacker polls it to learn the instant a victim app
(e.g. Facebook) hands the foreground to the appstore (Section III-D).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import AndroidError

OOM_ADJ_FOREGROUND = 0
OOM_ADJ_VISIBLE = 1
OOM_ADJ_BACKGROUND = 6


class ProcFs:
    """World-readable per-process state, as an attacker sees it."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._foreground: Optional[str] = None
        self._next_pid = 2000

    def register(self, package: str) -> int:
        """Assign a PID to ``package``'s process; idempotent."""
        if package not in self._pids:
            self._pids[package] = self._next_pid
            self._next_pid += 1
        return self._pids[package]

    def pid_of(self, package: str) -> int:
        """PID for ``package`` (attackers learn this from /proc scans)."""
        pid = self._pids.get(package)
        if pid is None:
            raise AndroidError(f"no process for package {package}")
        return pid

    def set_foreground(self, package: Optional[str]) -> None:
        """Called by the AMS when the foreground activity changes."""
        self._foreground = package

    @property
    def foreground_package(self) -> Optional[str]:
        """The package currently in the foreground (AMS-internal view)."""
        return self._foreground

    def oom_adj(self, pid: int) -> int:
        """Read /proc/<pid>/oom_adj — no permission required."""
        for package, known_pid in self._pids.items():
            if known_pid == pid:
                if package == self._foreground:
                    return OOM_ADJ_FOREGROUND
                return OOM_ADJ_BACKGROUND
        raise AndroidError(f"no such pid {pid}")

    def oom_adj_of(self, package: str) -> int:
        """Convenience: oom_adj via package name."""
        return self.oom_adj(self.pid_of(package))
