"""``android.os.FileObserver`` over the simulated VFS.

Any app — system or not, and crucially *without any special
permission beyond SD-Card access* — can watch a directory for
inotify-style events.  The paper's attacker counts ``CLOSE_NOWRITE``
events to find the end of an installer's integrity check
(Section III-B), and the DAPP defense watches the same stream for
suspicious writes (Section V-B).

Like the real API, the stream may be lossy: when the observer's
subscription carries :class:`~repro.sim.events.WatchLimits`, a queue
overflow surfaces as a single :data:`FileEventType.Q_OVERFLOW` event
(empty ``name``) and the intervening events are gone — the consumer
must rescan the directory to resynchronize.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.android.filesystem import FileEvent, FileEventType, normalize
from repro.sim.events import EventHub, QueueOverflow, Subscription, WatchLimits

ALL_EVENTS: Set[FileEventType] = set(FileEventType)

#: Events kept in :attr:`FileObserver.history`.  Counters are exact
#: forever; the history ring only backs "recent events" introspection
#: and tests, so a bounded default stops week-long watches from
#: accreting memory.
DEFAULT_HISTORY_LIMIT = 4096


class FileObserver:
    """Watches one directory (non-recursive, like the Android class)."""

    def __init__(self, hub: EventHub, directory: str,
                 mask: Optional[Iterable[FileEventType]] = None,
                 limits: Optional[WatchLimits] = None,
                 history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT) -> None:
        self._hub = hub
        self.directory = normalize(directory)
        self.mask: Set[FileEventType] = set(mask) if mask is not None else set(ALL_EVENTS)
        self.limits = limits
        self._subscription: Optional[Subscription] = None
        self._listeners: List[Callable[[FileEvent], None]] = []
        self.history: Deque[FileEvent] = deque(maxlen=history_limit)
        #: Matching events ever dispatched (history may have evicted some).
        self.events_seen = 0
        #: ``Q_OVERFLOW`` events received — loss episodes on this watch.
        self.overflows = 0
        self._counts: Dict[Tuple[FileEventType, str], int] = {}
        self._type_counts: Dict[FileEventType, int] = {}

    def on_event(self, listener: Callable[[FileEvent], None]) -> None:
        """Register ``listener`` for every matching event while watching."""
        self._listeners.append(listener)

    def start_watching(self) -> None:
        """Begin receiving events. Idempotent."""
        if self._subscription is None:
            self._subscription = self._hub.subscribe(
                f"fs:{self.directory}", self._dispatch, limits=self.limits
            )

    def stop_watching(self) -> None:
        """Stop receiving events. Idempotent."""
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    @property
    def watching(self) -> bool:
        """True while the observer is registered."""
        return self._subscription is not None

    @property
    def subscription(self) -> Optional[Subscription]:
        """The live hub subscription (loss counters live here)."""
        return self._subscription

    def count(self, event_type: FileEventType, name: Optional[str] = None) -> int:
        """How many events of ``event_type`` (optionally for ``name``) were seen.

        O(1): counters are maintained incrementally at dispatch and
        survive history eviction.
        """
        if name is None:
            return self._type_counts.get(event_type, 0)
        return self._counts.get((event_type, name), 0)

    def _dispatch(self, event: FileEvent) -> None:
        if isinstance(event, QueueOverflow):
            self.overflows += 1
            event = FileEvent(FileEventType.Q_OVERFLOW, self.directory,
                              "", event.time_ns)
        if event.event_type not in self.mask:
            return
        self.events_seen += 1
        key = (event.event_type, event.name)
        self._counts[key] = self._counts.get(key, 0) + 1
        self._type_counts[event.event_type] = \
            self._type_counts.get(event.event_type, 0) + 1
        self.history.append(event)
        for listener in list(self._listeners):
            listener(event)

    def __repr__(self) -> str:
        state = "watching" if self.watching else "stopped"
        return f"FileObserver({self.directory!r}, {state}, seen={self.events_seen})"
