"""``android.os.FileObserver`` over the simulated VFS.

Any app — system or not, and crucially *without any special
permission beyond SD-Card access* — can watch a directory for
inotify-style events.  The paper's attacker counts ``CLOSE_NOWRITE``
events to find the end of an installer's integrity check
(Section III-B), and the DAPP defense watches the same stream for
suspicious writes (Section V-B).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from repro.android.filesystem import FileEvent, FileEventType, normalize
from repro.sim.events import EventHub, Subscription

ALL_EVENTS: Set[FileEventType] = set(FileEventType)


class FileObserver:
    """Watches one directory (non-recursive, like the Android class)."""

    def __init__(self, hub: EventHub, directory: str,
                 mask: Optional[Iterable[FileEventType]] = None) -> None:
        self._hub = hub
        self.directory = normalize(directory)
        self.mask: Set[FileEventType] = set(mask) if mask is not None else set(ALL_EVENTS)
        self._subscription: Optional[Subscription] = None
        self._listeners: List[Callable[[FileEvent], None]] = []
        self.history: List[FileEvent] = []

    def on_event(self, listener: Callable[[FileEvent], None]) -> None:
        """Register ``listener`` for every matching event while watching."""
        self._listeners.append(listener)

    def start_watching(self) -> None:
        """Begin receiving events. Idempotent."""
        if self._subscription is None:
            self._subscription = self._hub.subscribe(
                f"fs:{self.directory}", self._dispatch
            )

    def stop_watching(self) -> None:
        """Stop receiving events. Idempotent."""
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    @property
    def watching(self) -> bool:
        """True while the observer is registered."""
        return self._subscription is not None

    def count(self, event_type: FileEventType, name: Optional[str] = None) -> int:
        """How many events of ``event_type`` (optionally for ``name``) were seen."""
        return sum(
            1
            for event in self.history
            if event.event_type is event_type and (name is None or event.name == name)
        )

    def _dispatch(self, event: FileEvent) -> None:
        if event.event_type not in self.mask:
            return
        self.history.append(event)
        for listener in list(self._listeners):
            listener(event)

    def __repr__(self) -> str:
        state = "watching" if self.watching else "stopped"
        return f"FileObserver({self.directory!r}, {state}, seen={len(self.history)})"
