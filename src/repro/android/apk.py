"""APK files: manifest, payload, signature, serialization, repackaging.

The on-"disk" format is a simple length-prefixed container ending in the
ZIP *end of central directory* magic (``PK\\x05\\x06``) — the marker the
paper's "wait-and-see" attacker looks for at the end of the file to
detect download completion without FileObserver (Section III-B).

Repackaging (:func:`repackage`) keeps the victim's ``AndroidManifest``
byte-for-byte while swapping the payload and re-signing with the
attacker's key.  Because ``installPackageWithVerification`` and the PIA
only checksum the *manifest*, a repackaged APK sails through both
(Section III-B, "Attack on new Amazon appstore" / "Attack on PIA").
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.errors import AndroidError
from repro.android.permissions import PermissionDefinition, ProtectionLevel
from repro.android.signing import Certificate, Signature, SigningKey

APK_MAGIC = b"APK1"
EOCD_MAGIC = b"PK\x05\x06"

# Content-addressed artifact caches, shared per-process.  Builds and
# signatures are pure functions of their inputs (keys are deterministic
# from (owner, key_id)), and ``Apk``/``AndroidManifest`` are frozen, so
# identical build requests may share one instance.  Fleet campaigns
# build the same handful of packages thousands of times per shard.
_CACHE_CAP = 4096
_BUILD_CACHE: dict = {}
_PARSE_CACHE: dict = {}


def clear_artifact_caches() -> None:
    """Drop the process-wide build/parse caches (test isolation hook)."""
    _BUILD_CACHE.clear()
    _PARSE_CACHE.clear()


@dataclass(frozen=True)
class PermissionSpec:
    """A ``<permission>`` element: a definition carried by a manifest."""

    name: str
    level: str = "normal"
    group: Optional[str] = None

    def to_definition(self, defined_by: str) -> PermissionDefinition:
        """Materialize as a registry definition owned by ``defined_by``."""
        return PermissionDefinition(
            name=self.name,
            level=ProtectionLevel(self.level),
            group=self.group,
            defined_by=defined_by,
        )


@dataclass(frozen=True)
class AndroidManifest:
    """The parts of AndroidManifest.xml the installation pipeline reads."""

    package: str
    version_code: int = 1
    label: str = ""
    icon: str = ""
    uses_permissions: Tuple[str, ...] = ()
    defines_permissions: Tuple[PermissionSpec, ...] = ()

    def to_bytes(self) -> bytes:
        """Canonical byte serialization (what manifest checksums cover).

        Memoized per instance: the manifest is frozen, and hot paths
        (signing, container serialization, checksum verification)
        re-serialize the same manifest many times per install.
        """
        cached = self.__dict__.get("_bytes")
        if cached is not None:
            return cached
        payload = {
            "package": self.package,
            "version_code": self.version_code,
            "label": self.label,
            "icon": self.icon,
            "uses_permissions": list(self.uses_permissions),
            "defines_permissions": [
                {"name": spec.name, "level": spec.level, "group": spec.group}
                for spec in self.defines_permissions
            ],
        }
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        object.__setattr__(self, "_bytes", data)
        return data

    @staticmethod
    def from_bytes(data: bytes) -> "AndroidManifest":
        """Parse a manifest previously produced by :meth:`to_bytes`."""
        payload = json.loads(data.decode("utf-8"))
        return AndroidManifest(
            package=payload["package"],
            version_code=payload["version_code"],
            label=payload["label"],
            icon=payload["icon"],
            uses_permissions=tuple(payload["uses_permissions"]),
            defines_permissions=tuple(
                PermissionSpec(item["name"], item["level"], item["group"])
                for item in payload["defines_permissions"]
            ),
        )

    def checksum(self) -> str:
        """SHA-256 of the canonical manifest bytes (memoized).

        This is the *insufficient* integrity anchor used by
        ``installPackageWithVerification`` and the PIA.
        """
        cached = self.__dict__.get("_checksum")
        if cached is None:
            cached = hashlib.sha256(self.to_bytes()).hexdigest()
            object.__setattr__(self, "_checksum", cached)
        return cached


@dataclass(frozen=True)
class Apk:
    """A complete, signed application package."""

    manifest: AndroidManifest
    payload: bytes
    signature: Signature

    @property
    def package(self) -> str:
        """Package name, e.g. ``com.amazon.venezia``."""
        return self.manifest.package

    @property
    def version_code(self) -> int:
        """Monotonic version code."""
        return self.manifest.version_code

    @property
    def certificate(self) -> Certificate:
        """Signing certificate embedded in the signature block."""
        return self.signature.certificate

    def signed_content(self) -> bytes:
        """The bytes the signature covers: manifest + payload."""
        return self.manifest.to_bytes() + self.payload

    def verify_signature(self) -> bool:
        """True if the embedded signature matches the content."""
        return self.signature.matches(self.signed_content())

    def to_bytes(self) -> bytes:
        """Serialize to the on-disk container format (ends with EOCD).

        Memoized per instance — every publish/download/verify round-trip
        re-serializes the same immutable package.
        """
        cached = self.__dict__.get("_bytes")
        if cached is not None:
            return cached
        manifest_bytes = self.manifest.to_bytes()
        cert_bytes = json.dumps(
            {"fingerprint": self.certificate.fingerprint, "owner": self.certificate.owner}
        ).encode("utf-8")
        sig_bytes = self.signature.value.encode("ascii")
        chunks = [APK_MAGIC]
        for blob in (manifest_bytes, self.payload, cert_bytes, sig_bytes):
            chunks.append(len(blob).to_bytes(8, "big"))
            chunks.append(blob)
        chunks.append(EOCD_MAGIC)
        data = b"".join(chunks)
        object.__setattr__(self, "_bytes", data)
        return data

    @staticmethod
    def from_bytes(data: bytes) -> "Apk":
        """Parse a container; raises :class:`MalformedApk` when truncated.

        Parses are cached by content: installers re-parse the same
        downloaded bytes on every verification pass, and ``Apk`` is
        immutable so sharing the parsed instance is safe.
        """
        cached = _PARSE_CACHE.get(data)
        if cached is not None:
            return cached
        apk = Apk._parse(data)
        if len(_PARSE_CACHE) >= _CACHE_CAP:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[data] = apk
        object.__setattr__(apk, "_bytes", data)
        return apk

    @staticmethod
    def _parse(data: bytes) -> "Apk":
        if not data.startswith(APK_MAGIC):
            raise MalformedApk("bad magic")
        if not data.endswith(EOCD_MAGIC):
            raise MalformedApk("missing end-of-central-directory record")
        body = data[len(APK_MAGIC):-len(EOCD_MAGIC)]
        blobs: List[bytes] = []
        offset = 0
        for _ in range(4):
            if offset + 8 > len(body):
                raise MalformedApk("truncated length header")
            length = int.from_bytes(body[offset:offset + 8], "big")
            offset += 8
            if offset + length > len(body):
                raise MalformedApk("truncated blob")
            blobs.append(body[offset:offset + length])
            offset += length
        if offset != len(body):
            raise MalformedApk("trailing garbage")
        manifest = AndroidManifest.from_bytes(blobs[0])
        cert_payload = json.loads(blobs[2].decode("utf-8"))
        certificate = Certificate(
            fingerprint=cert_payload["fingerprint"], owner=cert_payload["owner"]
        )
        signature = Signature(certificate=certificate, value=blobs[3].decode("ascii"))
        return Apk(manifest=manifest, payload=blobs[1], signature=signature)

    def file_hash(self) -> str:
        """SHA-256 over the whole container (what installers verify);
        memoized alongside the serialized bytes."""
        cached = self.__dict__.get("_file_hash")
        if cached is None:
            cached = hashlib.sha256(self.to_bytes()).hexdigest()
            object.__setattr__(self, "_file_hash", cached)
        return cached

    @property
    def size_bytes(self) -> int:
        """Size of the serialized container."""
        return len(self.to_bytes())

    def __repr__(self) -> str:
        return (
            f"Apk({self.package!r} v{self.version_code}, "
            f"signed by {self.certificate.owner})"
        )


class MalformedApk(AndroidError):
    """The byte stream is not a complete APK container."""


def file_is_complete(data: bytes) -> bool:
    """The wait-and-see attacker's check: does the EOCD record exist yet?"""
    return data.endswith(EOCD_MAGIC) and data.startswith(APK_MAGIC)


def hash_bytes(data: bytes) -> str:
    """SHA-256 of arbitrary bytes (installer-side file hashing)."""
    return hashlib.sha256(data).hexdigest()


class ApkBuilder:
    """Fluent builder for test/corpus APKs."""

    def __init__(self, package: str) -> None:
        self._package = package
        self._version_code = 1
        self._label = package.rsplit(".", 1)[-1]
        self._icon = f"icon:{package}"
        self._uses: List[str] = []
        self._defines: List[PermissionSpec] = []
        self._payload = b""

    def version(self, version_code: int) -> "ApkBuilder":
        """Set the version code."""
        self._version_code = version_code
        return self

    def label(self, label: str) -> "ApkBuilder":
        """Set the user-visible app name."""
        self._label = label
        return self

    def icon(self, icon: str) -> "ApkBuilder":
        """Set the (symbolic) icon."""
        self._icon = icon
        return self

    def uses_permission(self, *names: str) -> "ApkBuilder":
        """Add ``<uses-permission>`` entries."""
        self._uses.extend(names)
        return self

    def defines_permission(self, name: str, level: str = "normal",
                           group: Optional[str] = None) -> "ApkBuilder":
        """Add a ``<permission>`` definition carried by this APK."""
        self._defines.append(PermissionSpec(name=name, level=level, group=group))
        return self

    def payload(self, payload: bytes) -> "ApkBuilder":
        """Set the code/resources blob."""
        self._payload = payload
        return self

    def payload_size(self, size_bytes: int) -> "ApkBuilder":
        """Set a synthetic payload of ``size_bytes`` deterministic bytes."""
        seed = hashlib.sha256(self._package.encode("utf-8")).digest()
        repeats = size_bytes // len(seed) + 1
        self._payload = (seed * repeats)[:size_bytes]
        return self

    def build(self, key: SigningKey) -> Apk:
        """Sign and return the APK.

        Builds are content-addressed: the cache key covers every
        manifest field, the payload, and the signing key's certificate
        fingerprint, so two identical build requests share one frozen
        ``Apk`` instance (and its serialization/hash memos).
        """
        cache_key = (
            self._package, self._version_code, self._label, self._icon,
            tuple(self._uses), tuple(self._defines), self._payload,
            key.certificate.fingerprint,
        )
        cached = _BUILD_CACHE.get(cache_key)
        if cached is not None:
            return cached
        manifest = AndroidManifest(
            package=self._package,
            version_code=self._version_code,
            label=self._label,
            icon=self._icon,
            uses_permissions=tuple(self._uses),
            defines_permissions=tuple(self._defines),
        )
        content = manifest.to_bytes() + self._payload
        apk = Apk(manifest=manifest, payload=self._payload, signature=key.sign(content))
        if len(_BUILD_CACHE) >= _CACHE_CAP:
            _BUILD_CACHE.clear()
        _BUILD_CACHE[cache_key] = apk
        return apk


def repackage(original: Apk, attacker_key: SigningKey,
              payload: bytes = b"<malicious payload>",
              keep_label_and_icon: bool = True) -> Apk:
    """Repackage ``original`` with attacker code but the same manifest.

    The returned APK has an **identical manifest checksum** to the
    original (defeating manifest-based verification) and, by default,
    the original's label and icon (defeating the PIA consent dialog's
    name/icon display).  Only the certificate differs — which nothing in
    the vulnerable pipeline checks.
    """
    manifest = original.manifest
    if not keep_label_and_icon:
        manifest = replace(manifest, label="attacker", icon="icon:attacker")
    content = manifest.to_bytes() + payload
    return Apk(manifest=manifest, payload=payload, signature=attacker_key.sign(content))
