"""The system log (logcat) — the prior-work attack channel.

PaloAltoNetworks' earlier installation attack (the paper's Related
Work, [14]) watched **logcat** for the consent dialog being displayed
and replaced the APK while the user was looking at it.  That channel
died with Android 4.1, which restricted ``READ_LOGS`` to system apps —
one of the reasons the paper's FileObserver/wait-and-see attacks are a
strictly stronger threat.

This module models exactly that: a log stream apps can subscribe to
*only* when the build still allows it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.errors import SecurityException
from repro.android.filesystem import Caller
from repro.sim.events import EventHub, Subscription

READ_LOGS = "android.permission.READ_LOGS"

# Android 4.1 (Jelly Bean) removed third-party access to READ_LOGS.
_LAST_OPEN_VERSION = (4, 0)


@dataclass(frozen=True)
class LogEntry:
    """One logcat line."""

    tag: str
    message: str
    time_ns: int


class Logcat:
    """The device log buffer with version-gated read access."""

    def __init__(self, hub: EventHub, clock, android_version: str) -> None:
        self._hub = hub
        self._clock = clock
        self._version = _parse_version(android_version)
        self.entries: List[LogEntry] = []

    def log(self, tag: str, message: str) -> None:
        """System components write freely."""
        entry = LogEntry(tag=tag, message=message, time_ns=self._clock.now_ns)
        self.entries.append(entry)
        self._hub.publish("logcat", entry)

    def readable_by_apps(self) -> bool:
        """True on builds where third-party READ_LOGS still works."""
        return self._version <= _LAST_OPEN_VERSION

    def subscribe(self, caller: Caller,
                  handler: Callable[[LogEntry], None]) -> Subscription:
        """Attach a reader; enforces the READ_LOGS + version gate."""
        if caller.is_system:
            return self._hub.subscribe("logcat", handler)
        if not caller.has_permission(READ_LOGS):
            raise SecurityException(
                f"{caller.package} lacks {READ_LOGS}"
            )
        if not self.readable_by_apps():
            raise SecurityException(
                "READ_LOGS is restricted to system apps on this build "
                "(Android >= 4.1)"
            )
        return self._hub.subscribe("logcat", handler)


def _parse_version(version: str) -> Tuple[int, int]:
    parts = version.split(".")
    return (int(parts[0]), int(parts[1]) if len(parts) > 1 else 0)
