"""The Android permission model.

Reproduces the pieces of the permission system the paper leans on:

- protection levels, with ``signatureOrSystem`` granted only to
  system-image or platform-key-signed apps (Section II),
- permission *groups* with the Android 6.0 runtime-model loophole: a
  request for a permission in a group where another permission is
  already granted is granted **silently** (Section III-A, adversary
  model — how the attacker gets ``WRITE_EXTERNAL_STORAGE`` unnoticed),
- *Hare* (Hanging Attribute Reference) permissions: a permission some
  app uses but no app on the device defines, which a malicious app can
  later define and thereby own (Section III-B, privilege escalation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import PermissionUnknown


class ProtectionLevel(enum.Enum):
    """Protection levels, ordered by how hard they are to obtain."""

    NORMAL = "normal"
    DANGEROUS = "dangerous"
    SIGNATURE = "signature"
    SIGNATURE_OR_SYSTEM = "signatureOrSystem"


# -- well-known permission names ------------------------------------------

READ_EXTERNAL_STORAGE = "android.permission.READ_EXTERNAL_STORAGE"
WRITE_EXTERNAL_STORAGE = "android.permission.WRITE_EXTERNAL_STORAGE"
INSTALL_PACKAGES = "android.permission.INSTALL_PACKAGES"
DELETE_PACKAGES = "android.permission.DELETE_PACKAGES"
INTERNET = "android.permission.INTERNET"
READ_CONTACTS = "android.permission.READ_CONTACTS"
KILL_BACKGROUND_PROCESSES = "android.permission.KILL_BACKGROUND_PROCESSES"
READ_LOGS = "android.permission.READ_LOGS"

STORAGE_GROUP = "android.permission-group.STORAGE"
CONTACTS_GROUP = "android.permission-group.CONTACTS"


@dataclass(frozen=True)
class PermissionDefinition:
    """A permission as declared in some package's manifest."""

    name: str
    level: ProtectionLevel
    group: Optional[str] = None
    defined_by: str = "android"

    def is_dangerous(self) -> bool:
        """True for runtime-prompt (dangerous) permissions."""
        return self.level is ProtectionLevel.DANGEROUS


def builtin_definitions() -> List[PermissionDefinition]:
    """The platform permissions every device defines out of the box."""
    return [
        PermissionDefinition(READ_EXTERNAL_STORAGE, ProtectionLevel.DANGEROUS,
                             STORAGE_GROUP),
        PermissionDefinition(WRITE_EXTERNAL_STORAGE, ProtectionLevel.DANGEROUS,
                             STORAGE_GROUP),
        PermissionDefinition(INSTALL_PACKAGES, ProtectionLevel.SIGNATURE_OR_SYSTEM),
        PermissionDefinition(DELETE_PACKAGES, ProtectionLevel.SIGNATURE_OR_SYSTEM),
        PermissionDefinition(INTERNET, ProtectionLevel.NORMAL),
        PermissionDefinition(READ_CONTACTS, ProtectionLevel.DANGEROUS, CONTACTS_GROUP),
        PermissionDefinition(KILL_BACKGROUND_PROCESSES, ProtectionLevel.NORMAL),
        # Dangerous pre-4.1; the Logcat service enforces the 4.1+
        # system-only restriction at subscription time.
        PermissionDefinition(READ_LOGS, ProtectionLevel.DANGEROUS),
    ]


class PermissionRegistry:
    """All permission definitions known to one device."""

    def __init__(self) -> None:
        self._definitions: Dict[str, PermissionDefinition] = {}
        for definition in builtin_definitions():
            self._definitions[definition.name] = definition

    def define(self, definition: PermissionDefinition) -> bool:
        """Register a definition; first definer wins, like Android.

        Returns True if the definition was accepted, False if the name
        was already defined (by the platform or an earlier app).
        """
        if definition.name in self._definitions:
            return False
        self._definitions[definition.name] = definition
        return True

    def undefine_all_by(self, package: str) -> List[str]:
        """Drop definitions owned by ``package`` (on uninstall)."""
        removed = [
            name
            for name, definition in self._definitions.items()
            if definition.defined_by == package
        ]
        for name in removed:
            del self._definitions[name]
        return removed

    def lookup(self, name: str) -> Optional[PermissionDefinition]:
        """The definition for ``name``, or None if undefined (a Hare)."""
        return self._definitions.get(name)

    def require(self, name: str) -> PermissionDefinition:
        """Like :meth:`lookup` but raises if the permission is undefined."""
        definition = self._definitions.get(name)
        if definition is None:
            raise PermissionUnknown(name)
        return definition

    def is_defined(self, name: str) -> bool:
        """True if some party has defined ``name`` on this device."""
        return name in self._definitions

    def hares(self, used_permissions: Iterable[str]) -> List[str]:
        """Among ``used_permissions``, those nobody defines (Hare candidates)."""
        return [name for name in used_permissions if name not in self._definitions]

    def all_names(self) -> List[str]:
        """Sorted list of every defined permission name."""
        return sorted(self._definitions)


class PermissionState:
    """Granted permissions of one installed package (runtime model).

    ``request`` models the Android 6.0 runtime dialog including the
    same-group silent grant the paper's adversary exploits.
    """

    def __init__(self, registry: PermissionRegistry) -> None:
        self._registry = registry
        self._granted: Set[str] = set()

    @property
    def granted(self) -> frozenset:
        """Immutable view of granted permission names."""
        return frozenset(self._granted)

    def grant(self, name: str) -> None:
        """Grant unconditionally (install-time / system decision)."""
        self._granted.add(name)

    def revoke(self, name: str) -> None:
        """Remove a grant if present."""
        self._granted.discard(name)

    def has(self, name: str) -> bool:
        """True if ``name`` is currently granted."""
        return name in self._granted

    def request(self, name: str, user_approves: bool) -> bool:
        """Runtime permission request.

        Returns True if granted.  The request is **silent** (no dialog,
        ``user_approves`` ignored) when another permission of the same
        group is already granted — the loophole that lets the paper's
        malware turn a granted READ_EXTERNAL_STORAGE into
        WRITE_EXTERNAL_STORAGE without the user noticing.
        """
        definition = self._registry.require(name)
        if name in self._granted:
            return True
        if definition.level in (ProtectionLevel.SIGNATURE,
                                ProtectionLevel.SIGNATURE_OR_SYSTEM):
            # Signature-class permissions are granted only by the PMS at
            # install time (matching certificate / system image); a
            # runtime request can never mint them.
            return False
        if not definition.is_dangerous():
            self._granted.add(name)
            return True
        if definition.group is not None and self._holds_group(definition.group):
            self._granted.add(name)
            return True
        if user_approves:
            self._granted.add(name)
            return True
        return False

    def request_is_silent(self, name: str) -> bool:
        """Would :meth:`request` resolve without a user dialog?

        True both for silent grants (normal level, same-group) and for
        silent *denials* (signature-class at runtime).
        """
        definition = self._registry.require(name)
        if name in self._granted or not definition.is_dangerous():
            return True
        return definition.group is not None and self._holds_group(definition.group)

    def _holds_group(self, group: str) -> bool:
        for granted_name in self._granted:
            granted_def = self._registry.lookup(granted_name)
            if granted_def is not None and granted_def.group == group:
                return True
        return False
