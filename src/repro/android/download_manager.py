"""The AOSP Download Manager (DM) — AIT Step 2, and its symlink TOCTOU.

The DM enforces the security policies the paper describes: it binds the
requesting app's package name to each download ID, and it authorizes the
destination path (must be under /sdcard or the app's cache folder).  The
vulnerability (Section III-C) is *where* the authorization looks:

- ``SymlinkMode.LEXICAL`` (Android 4.4): the destination string is
  checked textually at enqueue time.  A symlink that lexically lives on
  /sdcard can be re-pointed anywhere after the check; retrieve/remove
  then operate on the new physical target with the DM's own (system)
  privilege.
- ``SymlinkMode.CHECK_THEN_USE`` (Android 6.0): the DM resolves the
  symlink and authorizes the *physical* path right before each request —
  but a simulated scheduling gap remains between that check and the
  actual file operation, and an attacker flipping the link continuously
  can land in it.
- ``SymlinkMode.SAFE`` (the fix shipped after the paper's report): the
  physical path is resolved once and used atomically for both the check
  and the operation.
"""

from __future__ import annotations

import enum
import itertools
import json
import posixpath
from dataclasses import dataclass
from typing import Dict, Generator, Tuple

from repro.errors import (
    DownloadDestinationError,
    DownloadError,
    FilesystemError,
)
from repro.android.filesystem import Caller, Filesystem, SYSTEM_UID, split
from repro.android.network import Network
from repro.android.storage import StorageLayout
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel, Sleep

ACTION_DOWNLOAD_COMPLETE = "android.intent.action.DOWNLOAD_COMPLETE"

DOWNLOAD_CHUNK_BYTES = 64 * 1024
# The window between the 6.0-style authorization check and the actual
# file operation (scheduling + FUSE round trip on a real device).
CHECK_TO_USE_GAP_NS = 200_000

_DM_DB_DIR = "/data/data/com.android.providers.downloads/databases"
DM_DATABASE_PATH = f"{_DM_DB_DIR}/downloads.db"


class SymlinkMode(enum.Enum):
    """How the DM authorizes symlinked destinations."""

    LEXICAL = "android-4.4"
    CHECK_THEN_USE = "android-6.0"
    SAFE = "patched"


class DownloadStatus(enum.Enum):
    """Lifecycle of a download row."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCESSFUL = "successful"
    FAILED = "failed"


@dataclass
class DownloadRecord:
    """One row of the DM's downloads database."""

    download_id: int
    url: str
    destination: str
    requesting_package: str
    status: DownloadStatus = DownloadStatus.PENDING
    bytes_total: int = 0
    bytes_so_far: int = 0

    def to_json(self) -> Dict[str, object]:
        """Serializable row (this is what leaks when the DB is stolen)."""
        return {
            "id": self.download_id,
            "url": self.url,
            "destination": self.destination,
            "package": self.requesting_package,
            "status": self.status.value,
        }


class DownloadManager:
    """The device's download manager service."""

    def __init__(self, kernel: Kernel, fs: Filesystem, hub: EventHub,
                 network: Network, layout: StorageLayout,
                 symlink_mode: SymlinkMode = SymlinkMode.CHECK_THEN_USE) -> None:
        self._kernel = kernel
        self._fs = fs
        self._hub = hub
        self._network = network
        self._layout = layout
        self.symlink_mode = symlink_mode
        self._records: Dict[int, DownloadRecord] = {}
        self._ids = itertools.count(1)
        # The DM runs as a privileged system service: it may read and
        # write anywhere.  That privilege is exactly what the symlink
        # attack borrows.
        self._caller = Caller(
            uid=SYSTEM_UID, package="com.android.providers.downloads", is_system=True
        )
        self._fs.makedirs(_DM_DB_DIR, self._caller)
        self._persist_database()

    # -- public API -----------------------------------------------------------

    def enqueue(self, caller: Caller, url: str, destination: str) -> int:
        """Request a download of ``url`` to ``destination``.

        Authorizes the destination per :attr:`symlink_mode`, binds the
        caller's package to the returned ID, and starts the transfer as
        a background simulation process.
        """
        self._authorize_destination(caller, destination, at_enqueue=True)
        download_id = next(self._ids)
        record = DownloadRecord(
            download_id=download_id,
            url=url,
            destination=destination,
            requesting_package=caller.package,
        )
        self._records[download_id] = record
        self._persist_database()
        self._kernel.spawn(self._transfer(record), name=f"dm-download-{download_id}")
        return download_id

    def query(self, caller: Caller, download_id: int) -> DownloadRecord:
        """Status row for ``download_id`` (caller must own it)."""
        return self._owned_record(caller, download_id)

    def retrieve(self, caller: Caller,
                 download_id: int) -> Generator[Sleep, None, bytes]:
        """Read back a completed download's bytes (simulation process).

        Under ``CHECK_THEN_USE`` the physical path is re-authorized, but
        a gap separates the check from the read — the Android 6.0 race.
        """
        record = self._owned_record(caller, download_id)
        physical = yield from self._check_then_use(record.destination)
        return self._fs.read_bytes(physical, self._caller)

    def remove(self, caller: Caller,
               download_id: int) -> Generator[Sleep, None, Tuple[str, bool]]:
        """Delete the downloaded file and the row.

        Returns ``(physical_path, unlinked)`` where ``unlinked`` says the
        file at the (possibly attacker-redirected) physical path was
        actually removed.
        """
        record = self._owned_record(caller, download_id)
        physical = yield from self._check_then_use(record.destination)
        unlinked = False
        if self._fs.exists(physical):
            self._fs.unlink(physical, self._caller)
            unlinked = True
        del self._records[download_id]
        self._persist_database()
        return physical, unlinked

    def completion_topic(self, download_id: int) -> str:
        """Event-hub topic published when ``download_id`` finishes."""
        return f"dm:complete:{download_id}"

    def database_path(self) -> str:
        """Path of the DM's private database (an attack target)."""
        return DM_DATABASE_PATH

    # -- authorization ---------------------------------------------------------

    def _authorize_destination(self, caller: Caller, destination: str,
                               at_enqueue: bool) -> None:
        """The DM's destination policy, with the mode-dependent blind spot."""
        if self.symlink_mode is SymlinkMode.LEXICAL or at_enqueue:
            path_for_check = posixpath.normpath(destination)
        else:
            path_for_check = self._physical_destination(destination)
        if not self._is_authorized_prefix(caller, path_for_check):
            raise DownloadDestinationError(
                f"{caller.package} may not download to {path_for_check}"
            )

    def _is_authorized_prefix(self, caller: Caller, path: str) -> bool:
        external = self._layout.external_root
        cache = f"{self._layout.app_data_root}/{caller.package}/cache"
        return (
            path == external
            or path.startswith(external + "/")
            or path.startswith(cache + "/")
        )

    def _check_then_use(self, destination: str) -> Generator[Sleep, None, str]:
        """Authorize then return the path to operate on, per symlink mode."""
        if self.symlink_mode is SymlinkMode.SAFE:
            # Patched behaviour: resolve once, check and use atomically.
            physical = self._physical_destination(destination)
            if not self._is_authorized_physical(physical):
                raise DownloadDestinationError(f"unauthorized path {physical}")
            return physical
        if self.symlink_mode is SymlinkMode.CHECK_THEN_USE:
            checked = self._physical_destination(destination)
            if not self._is_authorized_physical(checked):
                raise DownloadDestinationError(f"unauthorized path {checked}")
            # ... the gap: the link can be re-pointed before the use.
            yield Sleep(CHECK_TO_USE_GAP_NS)
        return self._physical_destination(destination)

    def _is_authorized_physical(self, path: str) -> bool:
        external = self._layout.external_root
        return path == external or path.startswith(external + "/")

    def _physical_destination(self, destination: str) -> str:
        """Resolve symlinks in ``destination``, tolerating a missing target."""
        path = posixpath.normpath(destination)
        hops = 0
        while self._fs.is_symlink(path):
            path = self._fs.readlink(path)
            hops += 1
            if hops > 16:
                raise DownloadError(f"symlink loop at {destination}")
        parent, name = split(path)
        try:
            resolved_parent = self._fs.resolve_physical(parent)
        except FilesystemError:
            resolved_parent = parent
        return posixpath.join(resolved_parent, name)

    # -- transfer --------------------------------------------------------------

    def _transfer(self, record: DownloadRecord) -> Generator[Sleep, None, None]:
        record.status = DownloadStatus.RUNNING
        try:
            content = self._network.fetch(record.url)
        except DownloadError:
            record.status = DownloadStatus.FAILED
            self._persist_database()
            self._announce(record)
            return
        record.bytes_total = len(content)
        yield Sleep(self._network.latency_ns)
        physical = self._physical_destination(record.destination)
        parent, _name = split(physical)
        if not self._fs.exists(parent):
            self._fs.makedirs(parent, self._caller)
        if self._fs.exists(physical):
            self._fs.unlink(physical, self._caller)
        handle = self._fs.create(physical, self._caller, exclusive=False)
        chunk_time = self._network.transfer_time_ns(DOWNLOAD_CHUNK_BYTES)
        offset = 0
        while offset < len(content) or offset == 0:
            chunk = content[offset:offset + DOWNLOAD_CHUNK_BYTES]
            handle.append(chunk)
            offset += len(chunk) or DOWNLOAD_CHUNK_BYTES
            record.bytes_so_far = min(offset, len(content))
            if offset < len(content):
                yield Sleep(chunk_time)
            else:
                break
        handle.close()  # emits CLOSE_WRITE: "download complete"
        record.status = DownloadStatus.SUCCESSFUL
        self._persist_database()
        self._announce(record)

    def _announce(self, record: DownloadRecord) -> None:
        self._hub.publish(self.completion_topic(record.download_id), record)
        self._hub.publish(f"broadcast:{ACTION_DOWNLOAD_COMPLETE}", record)

    # -- bookkeeping -------------------------------------------------------------

    def _owned_record(self, caller: Caller, download_id: int) -> DownloadRecord:
        record = self._records.get(download_id)
        if record is None:
            raise DownloadError(f"no such download id {download_id}")
        if record.requesting_package != caller.package and not caller.is_system:
            raise DownloadError(
                f"download {download_id} belongs to {record.requesting_package}"
            )
        return record

    def _persist_database(self) -> None:
        rows = [self._records[key].to_json() for key in sorted(self._records)]
        payload = json.dumps({"downloads": rows}, sort_keys=True).encode("utf-8")
        self._fs.write_bytes(DM_DATABASE_PATH, self._caller, payload, mode=0o600)
