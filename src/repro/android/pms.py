"""PackageManagerService (PMS): the privileged end of every AIT.

Implements the two install entry points the paper analyzes:

- :meth:`PackageManagerService.install_package` — the silent path,
  callable only by holders of ``INSTALL_PACKAGES``
  (``signatureOrSystem``); this is what appstore system apps and
  DTIgnite invoke (AIT Step 4),
- :meth:`PackageManagerService.install_package_with_verification` — the
  hidden API that additionally verifies a checksum of the APK's
  **AndroidManifest.xml only**.  That design decision is the Step-4
  vulnerability: a repackaged APK carrying the original manifest passes
  (Section III-B).

Permission granting reproduces the Section II rules: ``signature`` /
``signatureOrSystem`` permissions are granted only to platform-key
signed or system-image packages; permission *definitions* are
first-definer-wins, which is what makes Hare grabbing possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import (
    InstallError,
    InstallSignatureError,
    InstallStorageError,
    InstallVerificationError,
    PackageNotFound,
    SecurityException,
)
from repro.android.apk import Apk, MalformedApk
from repro.android.filesystem import Caller, Filesystem, SYSTEM_UID
from repro.android.packages import InstalledPackage, PackageDatabase
from repro.android.permissions import (
    DELETE_PACKAGES,
    INSTALL_PACKAGES,
    PermissionRegistry,
    PermissionState,
    ProtectionLevel,
)
from repro.android.signing import Certificate
from repro.android.storage import StorageLayout, StorageVolume
from repro.sim.events import EventHub

ACTION_PACKAGE_ADDED = "android.intent.action.PACKAGE_ADDED"
ACTION_PACKAGE_REPLACED = "android.intent.action.PACKAGE_REPLACED"
ACTION_PACKAGE_REMOVED = "android.intent.action.PACKAGE_REMOVED"
ACTION_PACKAGE_INSTALL = "android.intent.action.PACKAGE_INSTALL"


@dataclass(frozen=True)
class PackageBroadcast:
    """Payload of a PACKAGE_* broadcast."""

    action: str
    package: str
    version_code: int
    installer: str
    time_ns: int


class PackageManagerService:
    """The device's package manager."""

    def __init__(self, fs: Filesystem, hub: EventHub, database: PackageDatabase,
                 registry: PermissionRegistry, layout: StorageLayout,
                 internal_volume: StorageVolume,
                 platform_certificate: Certificate) -> None:
        self._fs = fs
        self._hub = hub
        self._db = database
        self._registry = registry
        self._layout = layout
        self._internal = internal_volume
        self.platform_certificate = platform_certificate
        # The PMS reads staged APKs with SYSTEM_UID but *without* the
        # is_system bypass: app-private files must be world-readable
        # for this caller to read them (the paper's Section II insight).
        self._reader = Caller(
            uid=SYSTEM_UID,
            package="com.android.server.pm",
            permissions=frozenset(
                {"android.permission.READ_EXTERNAL_STORAGE"}
            ),
        )
        self._system_writer = Caller(uid=SYSTEM_UID, package="android", is_system=True)
        self.install_log: List[PackageBroadcast] = []

    # -- public API -----------------------------------------------------------

    def install_package(self, apk_path: str, caller: Caller,
                        installer_package: str = "",
                        as_system_app: bool = False) -> InstalledPackage:
        """Silently install the APK staged at ``apk_path``.

        Requires the caller to hold ``INSTALL_PACKAGES`` (or be the
        system itself).  Reads the file *at call time* — whatever bytes
        are on storage now are what gets installed, which is exactly
        what the TOCTOU attacker exploits.
        """
        self._require(caller, INSTALL_PACKAGES, "installPackage")
        apk = self._read_apk(apk_path)
        return self._commit(apk, installer_package or caller.package, as_system_app)

    def install_package_with_verification(self, apk_path: str, caller: Caller,
                                          manifest_checksum: str,
                                          installer_package: str = "") -> InstalledPackage:
        """The hidden verification API: checks the **manifest** checksum only.

        Raises :class:`InstallVerificationError` when the staged file's
        manifest checksum differs from ``manifest_checksum``.  Note what
        it does *not* check: the payload, or the signer — hence the
        repackaging bypass.
        """
        self._require(caller, INSTALL_PACKAGES, "installPackageWithVerification")
        apk = self._read_apk(apk_path)
        if apk.manifest.checksum() != manifest_checksum:
            raise InstallVerificationError(
                f"manifest checksum mismatch for {apk.package}"
            )
        return self._commit(apk, installer_package or caller.package, False)

    def install_parsed(self, apk: Apk, installer_package: str,
                       as_system_app: bool = False) -> InstalledPackage:
        """Install an already-parsed APK (used by the PIA and provisioning)."""
        return self._commit(apk, installer_package, as_system_app)

    def uninstall_package(self, name: str, caller: Caller) -> None:
        """Silently remove an installed package (needs ``DELETE_PACKAGES``)."""
        self._require(caller, DELETE_PACKAGES, "deletePackage")
        package = self._db.remove(name)
        self._registry.undefine_all_by(name)
        installed_path = f"{self._layout.app_install_root}/{name}.apk"
        if self._fs.exists(installed_path):
            self._fs.unlink(installed_path, self._system_writer)
        self._broadcast(ACTION_PACKAGE_REMOVED, package, caller.package)

    def get_package(self, name: str) -> Optional[InstalledPackage]:
        """Installed package info, or None."""
        return self._db.get(name)

    def require_package(self, name: str) -> InstalledPackage:
        """Installed package info; raises if absent."""
        return self._db.require(name)

    def is_installed(self, name: str) -> bool:
        """True if ``name`` is installed."""
        return self._db.is_installed(name)

    def installed_signature(self, name: str) -> Certificate:
        """Certificate of the installed package ``name``."""
        return self._db.require(name).certificate

    def check_permission(self, permission: str, package: str) -> bool:
        """Android's ``checkPermission``: does ``package`` hold ``permission``?"""
        installed = self._db.get(package)
        return installed is not None and installed.permissions.has(permission)

    def parse_apk_file(self, apk_path: str) -> Apk:
        """Read and parse the APK at ``apk_path`` as the PMS reader."""
        return self._read_apk(apk_path)

    # -- install pipeline ------------------------------------------------------

    def _read_apk(self, apk_path: str) -> Apk:
        try:
            data = self._fs.read_bytes(apk_path, self._reader)
        except Exception as exc:
            raise InstallError(f"cannot read staged APK {apk_path}: {exc}") from exc
        try:
            return Apk.from_bytes(data)
        except MalformedApk as exc:
            raise InstallError(f"invalid APK at {apk_path}: {exc}") from exc

    def _commit(self, apk: Apk, installer_package: str,
                as_system_app: bool) -> InstalledPackage:
        if not apk.verify_signature():
            raise InstallError(f"APK signature invalid for {apk.package}")
        existing = self._db.get(apk.package)
        replacing = existing is not None
        if existing is not None:
            if existing.certificate != apk.certificate:
                raise InstallSignatureError(
                    f"certificate mismatch updating {apk.package}"
                )
            uid = existing.uid
            permissions = existing.permissions
            as_system_app = as_system_app or existing.is_system
        else:
            if not self._internal.can_fit(len(apk.payload)):
                raise InstallStorageError(
                    f"not enough internal storage for {apk.package}"
                )
            uid = self._db.allocate_uid()
            permissions = PermissionState(self._registry)
        # Permission definitions land first (first-definer-wins), then
        # grants are evaluated — the ordering Hare grabbing relies on.
        for spec in apk.manifest.defines_permissions:
            self._registry.define(spec.to_definition(apk.package))
        self._grant_permissions(apk, permissions, as_system_app)
        package = InstalledPackage(
            package=apk.package,
            version_code=apk.version_code,
            certificate=apk.certificate,
            manifest=apk.manifest,
            uid=uid,
            permissions=permissions,
            is_system=as_system_app,
            installer_package=installer_package,
            installed_ns=self._fs.now_ns,
            payload=apk.payload,
        )
        self._materialize(package, apk)
        self._db.add(package)
        action = ACTION_PACKAGE_REPLACED if replacing else ACTION_PACKAGE_ADDED
        self._broadcast(action, package, installer_package)
        return package

    def _grant_permissions(self, apk: Apk, permissions: PermissionState,
                           as_system_app: bool) -> None:
        platform_signed = apk.certificate == self.platform_certificate
        for name in apk.manifest.uses_permissions:
            definition = self._registry.lookup(name)
            if definition is None:
                continue  # a Hare: stays ungranted until someone defines it
            if definition.level is ProtectionLevel.NORMAL:
                permissions.grant(name)
            elif definition.level is ProtectionLevel.DANGEROUS:
                # Install-time grant (pre-Android-6 model). Devices with
                # the runtime model leave these to PermissionState.request.
                permissions.grant(name)
            elif definition.level is ProtectionLevel.SIGNATURE:
                definer = self._db.get(definition.defined_by)
                definer_cert = (
                    definer.certificate if definer is not None
                    else self.platform_certificate
                )
                if apk.certificate == definer_cert:
                    permissions.grant(name)
            elif definition.level is ProtectionLevel.SIGNATURE_OR_SYSTEM:
                if platform_signed or as_system_app:
                    permissions.grant(name)

    def _materialize(self, package: InstalledPackage, apk: Apk) -> None:
        """Create the installed copy under /data/app and the app sandbox."""
        installed_path = f"{self._layout.app_install_root}/{package.package}.apk"
        if self._fs.exists(installed_path):
            self._fs.unlink(installed_path, self._system_writer)
        self._fs.write_bytes(installed_path, self._system_writer, apk.to_bytes())
        sandbox = self._layout.app_private_dir(package.package)
        if not self._fs.exists(sandbox):
            self._fs.makedirs(sandbox, self._system_writer, mode=0o700)
            self._fs.chown(sandbox, package.uid, self._system_writer)

    def _broadcast(self, action: str, package: InstalledPackage, installer: str) -> None:
        broadcast = PackageBroadcast(
            action=action,
            package=package.package,
            version_code=package.version_code,
            installer=installer,
            time_ns=self._fs.now_ns,
        )
        self.install_log.append(broadcast)
        self._hub.publish(f"broadcast:{action}", broadcast)
        if action in (ACTION_PACKAGE_ADDED, ACTION_PACKAGE_REPLACED):
            self._hub.publish(f"broadcast:{ACTION_PACKAGE_INSTALL}", broadcast)

    def _require(self, caller: Caller, permission: str, api: str) -> None:
        if caller.is_system or caller.has_permission(permission):
            return
        raise SecurityException(
            f"{api} requires {permission}; caller {caller.package!r} lacks it"
        )
