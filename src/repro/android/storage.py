"""Storage volumes and the internal-storage access policy.

Section II of the paper explains *why* installers use the SD-Card:
installing through internal storage needs roughly twice the app's size
(the staged APK plus the installed copy), which fails on low-end
devices.  :class:`StorageVolume` does that space accounting, and
:class:`InternalStoragePolicy` enforces the app-sandbox rule that makes
internal staging awkward in the first place — the staged APK must be
made world-readable before the PackageManager can read it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AccessDenied
from repro.android.filesystem import (
    AccessPolicy,
    Caller,
    Filesystem,
    Inode,
    ROOT_UID,
    SYSTEM_UID,
)

MB = 1024 * 1024
GB = 1024 * MB


class StorageVolume:
    """A fixed-capacity storage device with byte-level accounting."""

    def __init__(self, name: str, capacity_bytes: int, used_bytes: int = 0) -> None:
        if used_bytes > capacity_bytes:
            raise ValueError("volume cannot start over capacity")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.used_bytes = used_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes still available on the volume."""
        return self.capacity_bytes - self.used_bytes

    def charge(self, delta_bytes: int) -> bool:
        """Reserve (or release, if negative) ``delta_bytes``.

        Returns False when the volume cannot hold the growth, in which
        case the filesystem raises ``StorageFull`` — the failure mode
        that pushes installers onto the SD-Card.
        """
        if delta_bytes > self.free_bytes:
            return False
        self.used_bytes = max(0, self.used_bytes + delta_bytes)
        return True

    def can_fit(self, size_bytes: int) -> bool:
        """True if a file of ``size_bytes`` fits right now."""
        return size_bytes <= self.free_bytes

    def __repr__(self) -> str:
        return (
            f"StorageVolume({self.name!r}, used={self.used_bytes}/"
            f"{self.capacity_bytes})"
        )


@dataclass(frozen=True)
class StorageLayout:
    """Mount points used by every simulated device."""

    internal_root: str = "/data"
    app_data_root: str = "/data/data"
    app_install_root: str = "/data/app"
    external_root: str = "/sdcard"
    download_cache: str = "/cache"

    def app_private_dir(self, package: str) -> str:
        """Private data directory of ``package`` on internal storage."""
        return f"{self.app_data_root}/{package}"


class InternalStoragePolicy(AccessPolicy):
    """App-sandbox DAC for /data.

    - Each app owns ``/data/data/<package>``; only the owner UID and
      system principals may read or write inside it, *unless* a file has
      been made world-readable (mode o+r) — the exact loophole ordinary
      developers hit when staging APKs for the PackageManager
      (Section II, "Understanding SD-Card usage of ordinary developers").
    - ``/data/app`` and other system areas are system-only.
    """

    def __init__(self, layout: StorageLayout) -> None:
        self._layout = layout

    def check_read(self, fs: Filesystem, caller: Caller, path: str,
                   inode: Optional[Inode]) -> None:
        if self._is_privileged(caller):
            return
        owner = self._sandbox_owner(path, fs)
        if owner is None:
            raise AccessDenied(path, "internal storage is system-only")
        if caller.uid == owner:
            return
        if inode is not None and inode.world_readable():
            return
        raise AccessDenied(path, "file is private to another app")

    def check_write(self, fs: Filesystem, caller: Caller, path: str,
                    inode: Optional[Inode]) -> None:
        self._check_mutate(fs, caller, path)

    def check_create(self, fs: Filesystem, caller: Caller, path: str) -> None:
        self._check_mutate(fs, caller, path)

    def check_delete(self, fs: Filesystem, caller: Caller, path: str,
                     inode: Optional[Inode]) -> None:
        self._check_mutate(fs, caller, path)

    def check_rename(self, fs: Filesystem, caller: Caller, src: str, dst: str) -> None:
        self._check_mutate(fs, caller, src)

    def _check_mutate(self, fs: Filesystem, caller: Caller, path: str) -> None:
        if self._is_privileged(caller):
            return
        owner = self._sandbox_owner(path, fs)
        if owner is None or caller.uid != owner:
            raise AccessDenied(path, "cannot modify another app's private storage")

    def _is_privileged(self, caller: Caller) -> bool:
        # Note: a caller with uid == SYSTEM_UID but is_system=False is NOT
        # privileged here.  The PackageManagerService reads staged APKs
        # through such a caller, reproducing the paper's observation that
        # an APK staged in an app's private directory must be made
        # world-readable before the PMS can read it (Section II).
        return caller.is_system or caller.uid == ROOT_UID

    def _sandbox_owner(self, path: str, fs: Filesystem) -> Optional[int]:
        """UID owning the app sandbox that contains ``path``, if any."""
        prefix = self._layout.app_data_root + "/"
        if not path.startswith(prefix):
            return None
        package = path[len(prefix):].split("/", 1)[0]
        sandbox = f"{self._layout.app_data_root}/{package}"
        try:
            return fs.stat(sandbox).owner_uid
        except Exception:
            return None
