"""In-memory virtual filesystem with DAC, symlinks and inotify events.

The VFS is the battleground for the paper's Section III-B and III-C
attacks: installer apps download APKs here, attackers watch it through
:class:`~repro.android.fileobserver.FileObserver`, swap files in the
TOCTOU window, and re-point symbolic links under the Download Manager.

Access control is pluggable per mount: the internal storage mount uses
app-sandbox DAC (:class:`repro.android.storage.InternalStoragePolicy`),
while /sdcard is wrapped by the FUSE daemon policy
(:class:`repro.android.fuse.FuseDaemon`), which — like real Android —
*ignores* file modes and grants write to any holder of
``WRITE_EXTERNAL_STORAGE``.
"""

from __future__ import annotations

import enum
import itertools
import posixpath
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    AccessDenied,
    FileExists,
    FileNotFound,
    FilesystemError,
    IsADirectory,
    NotADirectory,
    StorageFull,
    SymlinkLoop,
)
from repro.sim.events import EventHub

ROOT_UID = 0
SYSTEM_UID = 1000
FIRST_APP_UID = 10000

_MAX_SYMLINK_DEPTH = 16


class NodeKind(enum.Enum):
    """What an inode is."""

    FILE = "file"
    DIRECTORY = "directory"
    SYMLINK = "symlink"


class FileEventType(enum.Enum):
    """inotify-style event types surfaced to FileObserver.

    The subset matches the events the paper's attack and the DAPP
    defense key on (Sections III-B and V-B).
    """

    CREATE = "CREATE"
    OPEN = "OPEN"
    ACCESS = "ACCESS"
    MODIFY = "MODIFY"
    CLOSE_WRITE = "CLOSE_WRITE"
    CLOSE_NOWRITE = "CLOSE_NOWRITE"
    MOVED_FROM = "MOVED_FROM"
    MOVED_TO = "MOVED_TO"
    DELETE = "DELETE"
    #: Synthesized when a bounded watch queue overflowed and events
    #: were lost — inotify's ``IN_Q_OVERFLOW`` (never emitted by the
    #: filesystem itself; see :class:`repro.sim.events.WatchLimits`).
    Q_OVERFLOW = "Q_OVERFLOW"


@dataclass(frozen=True)
class FileEvent:
    """A filesystem notification delivered to watchers of a directory."""

    event_type: FileEventType
    directory: str
    name: str
    time_ns: int

    @property
    def path(self) -> str:
        """Full path of the affected file."""
        return posixpath.join(self.directory, self.name)


@dataclass(frozen=True)
class Caller:
    """Identity of the principal performing a filesystem operation."""

    uid: int
    package: str = ""
    permissions: frozenset = frozenset()
    is_system: bool = False

    def has_permission(self, permission: str) -> bool:
        """True if this caller holds ``permission`` (system holds all)."""
        return self.is_system or permission in self.permissions


SYSTEM_CALLER = Caller(uid=SYSTEM_UID, package="android", is_system=True)
ROOT_CALLER = Caller(uid=ROOT_UID, package="root", is_system=True)


class Inode:
    """A filesystem node: regular file, directory or symlink."""

    _ids = itertools.count(1)

    def __init__(self, kind: NodeKind, owner_uid: int, mode: int) -> None:
        self.inode_id = next(Inode._ids)
        self.kind = kind
        self.owner_uid = owner_uid
        self.mode = mode
        self.data = b""
        self.children: Dict[str, "Inode"] = {}
        self.symlink_target = ""
        self.created_ns = 0
        self.modified_ns = 0

    @property
    def size(self) -> int:
        """Size in bytes (0 for directories and symlinks)."""
        return len(self.data) if self.kind is NodeKind.FILE else 0

    def world_readable(self) -> bool:
        """True if the 'other read' mode bit is set."""
        return bool(self.mode & 0o004)

    def owner_writable(self) -> bool:
        """True if the 'owner write' mode bit is set."""
        return bool(self.mode & 0o200)

    def __repr__(self) -> str:
        return (
            f"Inode(id={self.inode_id}, kind={self.kind.value}, "
            f"uid={self.owner_uid}, mode={oct(self.mode)})"
        )


@dataclass(frozen=True)
class Stat:
    """Snapshot of an inode's metadata as returned by :meth:`Filesystem.stat`."""

    path: str
    kind: NodeKind
    owner_uid: int
    mode: int
    size: int
    inode_id: int
    created_ns: int
    modified_ns: int


class AccessPolicy:
    """Per-mount access control hook.

    The default policy is permissive; mounts install either the internal
    app-sandbox policy or the FUSE daemon.  Methods raise
    :class:`~repro.errors.AccessDenied` to veto an operation.
    """

    def on_create(self, fs: "Filesystem", caller: Caller, path: str, inode: Inode) -> None:
        """Called after a node is created (may adjust its mode/owner)."""

    def check_read(self, fs: "Filesystem", caller: Caller, path: str, inode: Inode) -> None:
        """Veto reads by raising AccessDenied."""

    def check_write(self, fs: "Filesystem", caller: Caller, path: str, inode: Inode) -> None:
        """Veto writes to an existing node."""

    def check_create(self, fs: "Filesystem", caller: Caller, path: str) -> None:
        """Veto creation of a new node at ``path``."""

    def check_delete(self, fs: "Filesystem", caller: Caller, path: str, inode: Inode) -> None:
        """Veto deletion."""

    def check_rename(self, fs: "Filesystem", caller: Caller, src: str, dst: str) -> None:
        """Veto a rename/move whose source resolves inside this mount."""


@dataclass
class Mount:
    """A mounted volume: path prefix, space accounting, access policy."""

    prefix: str
    volume: "object"
    policy: AccessPolicy = field(default_factory=AccessPolicy)


@lru_cache(maxsize=16384)
def normalize(path: str) -> str:
    """Normalize a path to an absolute, '..'-free canonical form.

    Pure string → string, so the result is memoized: simulated devices
    touch the same handful of paths thousands of times per campaign,
    and ``posixpath.normpath`` dominated the VFS profile before the
    cache (``tools/bench.py --profile``).
    """
    if not path.startswith("/"):
        raise FilesystemError(path, "paths must be absolute")
    return posixpath.normpath(path)


@lru_cache(maxsize=16384)
def split(path: str) -> Tuple[str, str]:
    """Split a normalized path into (parent-dir, basename). Memoized."""
    parent, name = posixpath.split(normalize(path))
    if not name:
        raise FilesystemError(path, "path has no final component")
    return parent, name


class FileHandle:
    """An open file; closing emits CLOSE_WRITE or CLOSE_NOWRITE.

    The distinction is exactly what the paper's attacker counts: an
    integrity-check pass over the APK produces CLOSE_NOWRITE events, and
    the end of the download produces CLOSE_WRITE.
    """

    def __init__(self, fs: "Filesystem", caller: Caller, path: str, inode: Inode,
                 writable: bool, quiet: bool = False) -> None:
        self._fs = fs
        self._caller = caller
        self.path = path
        self._inode = inode
        self.writable = writable
        self._wrote = False
        self.closed = False
        self._quiet = quiet

    def read(self) -> bytes:
        """Read the full contents; emits ACCESS."""
        self._ensure_open()
        self._fs._check_policy("read", self._caller, self.path, self._inode)
        if not self._quiet:
            self._fs._emit(self.path, FileEventType.ACCESS)
        return self._inode.data

    def write(self, data: bytes) -> None:
        """Replace contents; emits MODIFY and charges the volume."""
        self._ensure_open()
        if not self.writable:
            raise AccessDenied(self.path, "handle not opened for writing")
        self._fs._check_policy("write", self._caller, self.path, self._inode)
        self._fs._charge(self.path, len(data) - len(self._inode.data))
        self._inode.data = data
        self._inode.modified_ns = self._fs.now_ns
        self._wrote = True
        self._fs._emit(self.path, FileEventType.MODIFY)

    def append(self, data: bytes) -> None:
        """Append ``data`` (used by chunked downloads); emits MODIFY."""
        self.write(self._inode.data + data)

    def close(self) -> None:
        """Close and emit the matching CLOSE_* event. Idempotent."""
        if self.closed:
            return
        self.closed = True
        if self._quiet and not self._wrote:
            return
        event = FileEventType.CLOSE_WRITE if self._wrote else FileEventType.CLOSE_NOWRITE
        self._fs._emit(self.path, event)

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self.closed:
            raise FilesystemError(self.path, "I/O on closed file handle")


class Filesystem:
    """The device-wide VFS: one instance per simulated device."""

    #: Cap on the per-device resolution/mount caches; cleared-on-full
    #: rather than evicted, since a simulated device touches a small,
    #: recurring set of paths.
    _CACHE_CAP = 32768

    def __init__(self, hub: EventHub, clock) -> None:
        self._hub = hub
        self._clock = clock
        self.root = Inode(NodeKind.DIRECTORY, ROOT_UID, 0o755)
        self._mounts: List[Mount] = []
        # (prefix, prefix + "/", mount) in longest-prefix-first order,
        # so mount_for avoids re-allocating the slashed prefix per call.
        self._mount_index: List[Tuple[str, str, Mount]] = []
        # (path, follow_last) -> (resolved, inode), valid until the
        # next structural mutation (create/unlink/rename/symlink/
        # makedirs/retarget).  Data writes leave the tree shape — and
        # therefore the cache — untouched.
        self._resolve_cache: Dict[Tuple[str, bool], Tuple[str, Inode]] = {}
        # path -> mount (or None), valid until the mount table changes.
        self._mount_cache: Dict[str, Optional[Mount]] = {}

    # -- time ---------------------------------------------------------------

    @property
    def now_ns(self) -> int:
        """Current simulated time."""
        return self._clock.now_ns

    # -- mounts -------------------------------------------------------------

    def mount(self, prefix: str, volume: object, policy: Optional[AccessPolicy] = None) -> Mount:
        """Attach ``volume`` (space accounting) and ``policy`` under ``prefix``."""
        prefix = normalize(prefix)
        self.makedirs(prefix, SYSTEM_CALLER)
        mount = Mount(prefix=prefix, volume=volume, policy=policy or AccessPolicy())
        self._mounts.append(mount)
        self._mounts.sort(key=lambda m: len(m.prefix), reverse=True)
        self._mount_index = [(m.prefix, m.prefix + "/", m)
                             for m in self._mounts]
        self._mount_cache.clear()
        return mount

    def mount_for(self, path: str) -> Optional[Mount]:
        """The most specific mount whose prefix contains ``path``, if any.

        Memoized per path: the mount table changes only at provisioning
        time, while policy checks and space accounting look mounts up
        on every file operation.  (``set_policy`` swaps the policy *on*
        the cached mount object, so cached entries stay correct.)
        """
        cache = self._mount_cache
        try:
            return cache[path]
        except KeyError:
            pass
        normalized = normalize(path)
        found = None
        for prefix, prefix_slash, mount in self._mount_index:
            if normalized == prefix or normalized.startswith(prefix_slash):
                found = mount
                break
        if len(cache) >= self._CACHE_CAP:
            cache.clear()
        cache[path] = found
        return found

    def set_policy(self, prefix: str, policy: AccessPolicy) -> None:
        """Swap the access policy of the mount at ``prefix`` (defense install)."""
        for mount in self._mounts:
            if mount.prefix == normalize(prefix):
                mount.policy = policy
                return
        raise FileNotFound(prefix)

    # -- resolution ---------------------------------------------------------

    def _resolve(self, path: str,
                 follow_last: bool = True) -> Tuple[str, Inode]:
        """Resolve ``path`` to (physical-path, inode), following symlinks.

        Successful resolutions are cached until the next structural
        mutation (:meth:`_invalidate_resolution`): installs re-resolve
        the same handful of paths for every open/read/stat, and the
        tree shape changes far less often than it is read.
        """
        key = (path, follow_last)
        cache = self._resolve_cache
        result = cache.get(key)
        if result is None:
            result = self._resolve_walk(path, follow_last, 0)
            if len(cache) >= self._CACHE_CAP:
                cache.clear()
            cache[key] = result
        return result

    def _invalidate_resolution(self) -> None:
        """Drop cached resolutions after a tree-shape mutation."""
        if self._resolve_cache:
            self._resolve_cache.clear()

    def _resolve_walk(self, path: str, follow_last: bool,
                      _depth: int) -> Tuple[str, Inode]:
        if _depth > _MAX_SYMLINK_DEPTH:
            raise SymlinkLoop(path)
        path = normalize(path)
        node = self.root
        resolved = "/"
        parts = [part for part in path.split("/") if part]
        last = len(parts) - 1
        for index, part in enumerate(parts):
            if node.kind is not NodeKind.DIRECTORY:
                raise NotADirectory(resolved)
            child = node.children.get(part)
            if child is None:
                raise FileNotFound(posixpath.join(resolved, part))
            # ``resolved`` is canonical and ``part`` is one component,
            # so plain concatenation equals posixpath.join at a
            # fraction of the cost (this loop is the VFS hot path).
            resolved = "/" + part if resolved == "/" else resolved + "/" + part
            if child.kind is NodeKind.SYMLINK and (follow_last or index != last):
                remainder = parts[index + 1:]
                target = child.symlink_target
                if remainder:
                    target = posixpath.join(target, *remainder)
                return self._resolve_walk(target, follow_last, _depth + 1)
            node = child
        return resolved, node

    def resolve_physical(self, path: str) -> str:
        """Fully resolve symlinks and return the physical path."""
        resolved, _node = self._resolve(path, follow_last=True)
        return resolved

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves to an existing node."""
        try:
            self._resolve(path)
            return True
        except FilesystemError:
            return False

    def is_symlink(self, path: str) -> bool:
        """True if the final component of ``path`` is a symlink."""
        try:
            _resolved, node = self._resolve(path, follow_last=False)
        except FilesystemError:
            return False
        return node.kind is NodeKind.SYMLINK

    def readlink(self, path: str) -> str:
        """Target of the symlink at ``path`` (no resolution of the target)."""
        _resolved, node = self._resolve(path, follow_last=False)
        if node.kind is not NodeKind.SYMLINK:
            raise FilesystemError(path, "not a symlink")
        return node.symlink_target

    def stat(self, path: str, follow: bool = True) -> Stat:
        """Metadata snapshot of the node at ``path``."""
        resolved, node = self._resolve(path, follow_last=follow)
        return Stat(
            path=resolved,
            kind=node.kind,
            owner_uid=node.owner_uid,
            mode=node.mode,
            size=node.size,
            inode_id=node.inode_id,
            created_ns=node.created_ns,
            modified_ns=node.modified_ns,
        )

    def listdir(self, path: str) -> List[str]:
        """Sorted child names of the directory at ``path``."""
        _resolved, node = self._resolve(path)
        if node.kind is not NodeKind.DIRECTORY:
            raise NotADirectory(path)
        return sorted(node.children)

    def walk(self, path: str) -> Iterator[Tuple[str, Inode]]:
        """Depth-first (path, inode) traversal below ``path``."""
        resolved, node = self._resolve(path)
        stack: List[Tuple[str, Inode]] = [(resolved, node)]
        while stack:
            current_path, current = stack.pop()
            yield current_path, current
            if current.kind is NodeKind.DIRECTORY:
                for name in sorted(current.children, reverse=True):
                    stack.append((posixpath.join(current_path, name), current.children[name]))

    # -- mutation -----------------------------------------------------------

    def makedirs(self, path: str, caller: Caller, mode: int = 0o755) -> None:
        """Create directory ``path`` and any missing ancestors."""
        path = normalize(path)
        node = self.root
        built = "/"
        for part in [p for p in path.split("/") if p]:
            built = posixpath.join(built, part)
            child = node.children.get(part)
            if child is None:
                child = Inode(NodeKind.DIRECTORY, caller.uid, mode)
                child.created_ns = self.now_ns
                node.children[part] = child
                self._invalidate_resolution()
            elif child.kind is NodeKind.SYMLINK:
                built, child = self._resolve(built)
            elif child.kind is not NodeKind.DIRECTORY:
                raise NotADirectory(built)
            node = child

    def create(self, path: str, caller: Caller, mode: int = 0o600,
               exclusive: bool = True) -> FileHandle:
        """Create a file and return a writable handle; emits CREATE."""
        parent_path, name = split(path)
        _resolved_parent, parent = self._resolve(parent_path)
        if parent.kind is not NodeKind.DIRECTORY:
            raise NotADirectory(parent_path)
        full = posixpath.join(_resolved_parent, name)
        existing = parent.children.get(name)
        if existing is not None:
            if exclusive:
                raise FileExists(full)
            return self.open(full, caller, writable=True)
        self._check_policy("create", caller, full, None)
        inode = Inode(NodeKind.FILE, caller.uid, mode)
        inode.created_ns = self.now_ns
        inode.modified_ns = self.now_ns
        parent.children[name] = inode
        self._invalidate_resolution()
        mount = self.mount_for(full)
        if mount is not None:
            mount.policy.on_create(self, caller, full, inode)
        self._emit(full, FileEventType.CREATE)
        handle = FileHandle(self, caller, full, inode, writable=True)
        self._emit(full, FileEventType.OPEN)
        return handle

    def open(self, path: str, caller: Caller, writable: bool = False,
             quiet: bool = False) -> FileHandle:
        """Open an existing file; emits OPEN. Policy checked per read/write.

        ``quiet=True`` suppresses the read-side events (OPEN / ACCESS /
        CLOSE_NOWRITE).  It exists for the DAPP defense's signature
        grab: on real Android DAPP's own reads would add events to the
        very stream the attacker fingerprints — an incidental
        interference that is not the defense mechanism the paper
        evaluates, so we keep the streams independent (see DESIGN.md).
        """
        resolved, node = self._resolve(path)
        if node.kind is NodeKind.DIRECTORY:
            raise IsADirectory(resolved)
        if writable:
            self._check_policy("write", caller, resolved, node)
        else:
            self._check_policy("read", caller, resolved, node)
        if not quiet:
            self._emit(resolved, FileEventType.OPEN)
        return FileHandle(self, caller, resolved, node, writable=writable, quiet=quiet)

    def read_bytes(self, path: str, caller: Caller, quiet: bool = False) -> bytes:
        """Open, read fully and close (OPEN/ACCESS/CLOSE_NOWRITE)."""
        with self.open(path, caller, quiet=quiet) as handle:
            return handle.read()

    def write_bytes(self, path: str, caller: Caller, data: bytes,
                    mode: int = 0o600) -> None:
        """Create-or-truncate ``path`` with ``data`` and close it."""
        if self.exists(path):
            handle = self.open(path, caller, writable=True)
        else:
            handle = self.create(path, caller, mode=mode)
        with handle:
            handle.write(data)

    def symlink(self, link_path: str, target: str, caller: Caller) -> None:
        """Create a symbolic link at ``link_path`` pointing to ``target``."""
        parent_path, name = split(link_path)
        _resolved_parent, parent = self._resolve(parent_path)
        full = posixpath.join(_resolved_parent, name)
        if name in parent.children:
            raise FileExists(full)
        self._check_policy("create", caller, full, None)
        inode = Inode(NodeKind.SYMLINK, caller.uid, 0o777)
        inode.symlink_target = normalize(target)
        inode.created_ns = self.now_ns
        parent.children[name] = inode
        self._invalidate_resolution()
        self._emit(full, FileEventType.CREATE)

    def retarget_symlink(self, link_path: str, new_target: str, caller: Caller) -> None:
        """Re-point an existing symlink — the Download Manager TOCTOU primitive.

        Only the symlink's owner (or system) may re-point it.
        """
        resolved, node = self._resolve(link_path, follow_last=False)
        if node.kind is not NodeKind.SYMLINK:
            raise FilesystemError(link_path, "not a symlink")
        if caller.uid not in (node.owner_uid, ROOT_UID) and not caller.is_system:
            raise AccessDenied(link_path, "not the symlink owner")
        node.symlink_target = normalize(new_target)
        node.modified_ns = self.now_ns
        self._invalidate_resolution()

    def unlink(self, path: str, caller: Caller) -> None:
        """Delete a file or symlink; emits DELETE."""
        resolved, node = self._resolve(path, follow_last=False)
        if node.kind is NodeKind.DIRECTORY:
            raise IsADirectory(resolved)
        self._check_policy("delete", caller, resolved, node)
        parent_path, name = split(resolved)
        _parent_resolved, parent = self._resolve(parent_path)
        del parent.children[name]
        self._invalidate_resolution()
        self._charge(resolved, -node.size)
        self._emit(resolved, FileEventType.DELETE)

    def rename(self, src: str, dst: str, caller: Caller) -> None:
        """Move ``src`` to ``dst``; emits MOVED_FROM then MOVED_TO.

        The MOVED_TO event at the destination directory is how the
        paper's DAPP defense notices "move a file to replace
        target_apk" (Section V-B).
        """
        src_resolved, node = self._resolve(src, follow_last=False)
        dst = normalize(dst)
        src_mount = self.mount_for(src_resolved)
        if src_mount is not None:
            src_mount.policy.check_rename(self, caller, src_resolved, dst)
        dst_mount = self.mount_for(dst)
        if dst_mount is not None and dst_mount is not src_mount:
            dst_mount.policy.check_rename(self, caller, src_resolved, dst)
        if self.exists(dst):
            self._check_policy("write", caller, dst, self._resolve(dst)[1])
        else:
            self._check_policy("create", caller, dst)
        src_parent_path, src_name = split(src_resolved)
        _sp, src_parent = self._resolve(src_parent_path)
        dst_parent_path, dst_name = split(dst)
        _dp, dst_parent = self._resolve(dst_parent_path)
        if dst_parent.kind is not NodeKind.DIRECTORY:
            raise NotADirectory(dst_parent_path)
        src_mount_entry = self.mount_for(src_resolved)
        dst_mount_entry = self.mount_for(dst)
        if src_mount_entry is not dst_mount_entry:
            # Cross-volume move: the bytes leave one volume's accounting
            # and must fit on (and be charged to) the other.
            self._charge(dst, node.size)
            self._charge(src_resolved, -node.size)
        del src_parent.children[src_name]
        replaced = dst_parent.children.get(dst_name)
        if replaced is not None:
            self._charge(dst, -replaced.size)
        dst_parent.children[dst_name] = node
        node.modified_ns = self.now_ns
        self._invalidate_resolution()
        self._emit(src_resolved, FileEventType.MOVED_FROM)
        self._emit(dst, FileEventType.MOVED_TO)

    def chmod(self, path: str, mode: int, caller: Caller) -> None:
        """Change mode bits; only the owner or system may chmod."""
        resolved, node = self._resolve(path)
        if caller.uid != node.owner_uid and not caller.is_system:
            raise AccessDenied(resolved, "chmod requires ownership")
        node.mode = mode

    def chown(self, path: str, uid: int, caller: Caller) -> None:
        """Change ownership; restricted to system."""
        resolved, node = self._resolve(path)
        if not caller.is_system:
            raise AccessDenied(resolved, "chown requires system")
        node.owner_uid = uid

    # -- internals ----------------------------------------------------------

    def _check_policy(self, op: str, caller: Caller, path: str,
                      inode: Optional[Inode] = None) -> None:
        mount = self.mount_for(path)
        if mount is None:
            return
        policy = mount.policy
        if op == "read":
            policy.check_read(self, caller, path, inode)
        elif op == "write":
            policy.check_write(self, caller, path, inode)
        elif op == "create":
            policy.check_create(self, caller, path)
        elif op == "delete":
            policy.check_delete(self, caller, path, inode)

    def _charge(self, path: str, delta_bytes: int) -> None:
        mount = self.mount_for(path)
        if mount is None or delta_bytes == 0:
            return
        volume = mount.volume
        charge = getattr(volume, "charge", None)
        if charge is not None and not charge(delta_bytes):
            raise StorageFull(path)

    def _emit(self, path: str, event_type: FileEventType) -> None:
        # Fast path: on a device with no filesystem watcher at all
        # (no FileObserver, no DAPP — every benign fleet shard), skip
        # the split and the event construction entirely.  Watchers
        # registered *after* an emit would not have seen the event
        # anyway, so the skip is invisible to every subscriber.
        if not self._hub.namespace_active("fs"):
            return
        directory, name = split(path)
        event = FileEvent(event_type, directory, name, self.now_ns)
        self._hub.publish(f"fs:{directory}", event)
        self._hub.publish("fs:*", event)
