"""The FUSE daemon wrapping external storage (/sdcard).

On real Android the raw SD-Card device is wrapped by a userspace FUSE
daemon (``sdcard``) that synthesizes permissions.  The stock behaviour —
faithfully reproduced here — is that *file modes are ignored*: any app
holding ``WRITE_EXTERNAL_STORAGE`` may create, overwrite, move or delete
any file on the card, which is the root cause of the paper's
installation-hijacking attack (Section III-B).

The three methods the paper's system-level defense patches
(``derive_permissions_locked``, ``check_caller_access_to_name`` and
``handle_rename``, Section V-C) are explicit hook points here, so the
defense in :mod:`repro.defenses.fuse_dac` is a subclass overriding them.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AccessDenied
from repro.android.filesystem import (
    AccessPolicy,
    Caller,
    Filesystem,
    Inode,
)

READ_EXTERNAL_STORAGE = "android.permission.READ_EXTERNAL_STORAGE"
WRITE_EXTERNAL_STORAGE = "android.permission.WRITE_EXTERNAL_STORAGE"


class FuseDaemon(AccessPolicy):
    """Stock external-storage policy: permission-gated, DAC-blind."""

    def on_create(self, fs: Filesystem, caller: Caller, path: str, inode: Inode) -> None:
        """Synthesize permissions for a newly created node.

        Stock behaviour (``derive_permissions_locked``): every file is
        world-readable/writable as far as the daemon is concerned; the
        mode recorded on the inode is cosmetic.
        """
        inode.mode = 0o664

    def check_read(self, fs: Filesystem, caller: Caller, path: str,
                   inode: Optional[Inode]) -> None:
        if caller.is_system:
            return
        if not (caller.has_permission(READ_EXTERNAL_STORAGE)
                or caller.has_permission(WRITE_EXTERNAL_STORAGE)):
            raise AccessDenied(path, "READ_EXTERNAL_STORAGE required")

    def check_write(self, fs: Filesystem, caller: Caller, path: str,
                    inode: Optional[Inode]) -> None:
        if caller.is_system:
            return
        self._require_write_permission(caller, path)
        self.check_caller_access_to_name(fs, caller, path, inode)

    def check_create(self, fs: Filesystem, caller: Caller, path: str) -> None:
        if caller.is_system:
            return
        self._require_write_permission(caller, path)
        self.check_caller_access_to_name(fs, caller, path, None)

    def check_delete(self, fs: Filesystem, caller: Caller, path: str,
                     inode: Optional[Inode]) -> None:
        if caller.is_system:
            return
        self._require_write_permission(caller, path)
        self.check_caller_access_to_name(fs, caller, path, inode)

    def check_rename(self, fs: Filesystem, caller: Caller, src: str, dst: str) -> None:
        if caller.is_system:
            return
        self._require_write_permission(caller, src)
        self.handle_rename(fs, caller, src, dst)

    # -- hook points patched by the defense ----------------------------------

    def check_caller_access_to_name(self, fs: Filesystem, caller: Caller,
                                    path: str, inode: Optional[Inode]) -> None:
        """Per-file access decision.

        Stock FUSE grants access to *any* permission holder regardless
        of the DAC bits on the inode — the paper had to patch exactly
        this method because setting a file's mode to 640 alone changed
        nothing.
        """

    def handle_rename(self, fs: Filesystem, caller: Caller, src: str, dst: str) -> None:
        """Path-alteration decision (move/rename). Stock: always allowed."""

    # -- helpers --------------------------------------------------------------

    def _require_write_permission(self, caller: Caller, path: str) -> None:
        if not caller.has_permission(WRITE_EXTERNAL_STORAGE):
            raise AccessDenied(path, "WRITE_EXTERNAL_STORAGE required")
