"""ActivityManagerService (AMS): activity starts, foreground, broadcasts.

The Step-1 weakness lives here (Section III-D): ``start_activity``
delivers a background app's Intent to a foreground app's activity,
replacing what the activity displays, *without telling the recipient who
sent the Intent* — and the foreground handoff is observable through
``/proc/<pid>/oom_adj``.

Every activity Intent passes through the
:class:`~repro.android.intent_firewall.IntentFirewall`, the hook point
for the paper's detection and origin defenses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ActivityNotFound, SecurityException
from repro.android.filesystem import Caller
from repro.android.intents import Intent
from repro.android.intent_firewall import IntentFirewall, IntentRecord
from repro.android.proc import ProcFs
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel

# Simulated end-to-end latency of an activity-start Intent; calibrated
# to the paper's Table IX total (~4.8 ms on a Nexus 5).
INTENT_DELIVERY_LATENCY_NS = 4_800_000

IntentHandler = Callable[[Intent], None]
BroadcastHandler = Callable[["BroadcastEnvelope"], None]


@dataclass(frozen=True)
class BroadcastEnvelope:
    """An app-to-app broadcast as delivered to a receiver.

    Note ``sender_package`` is carried for *bookkeeping and defenses
    only*; vulnerable receivers in :mod:`repro.installers` deliberately
    never look at it, mirroring real receivers' inability to
    authenticate broadcast senders.
    """

    action: str
    extras: Dict[str, Any]
    sender_package: str
    time_ns: int


@dataclass
class ReceiverRegistration:
    """A registered broadcast receiver."""

    package: str
    action: str
    handler: BroadcastHandler
    required_permission: Optional[str] = None
    exported: bool = True


@dataclass
class ActivityFrame:
    """One entry of the activity back stack."""

    package: str
    activity: str
    intent: Intent


@dataclass
class RegisteredApp:
    """Runtime registration of an app with the AMS."""

    package: str
    pid: int
    intent_handler: Optional[IntentHandler] = None
    app: Optional[object] = None  # the App behaviour object, if any


class ActivityManagerService:
    """The device's activity manager."""

    def __init__(self, kernel: Kernel, hub: EventHub, firewall: IntentFirewall,
                 procfs: ProcFs) -> None:
        self._kernel = kernel
        self._hub = hub
        self.firewall = firewall
        self._procfs = procfs
        self._apps: Dict[str, RegisteredApp] = {}
        self._receivers: List[ReceiverRegistration] = []
        self.stack: List[ActivityFrame] = []
        self.delivered: List[IntentRecord] = []

    # -- registration ---------------------------------------------------------

    def register_app(self, package: str,
                     intent_handler: Optional[IntentHandler] = None,
                     app: Optional[object] = None) -> RegisteredApp:
        """Register ``package``'s process and (optionally) activity handler."""
        pid = self._procfs.register(package)
        registration = RegisteredApp(package=package, pid=pid,
                                     intent_handler=intent_handler, app=app)
        self._apps[package] = registration
        return registration

    def kill_background_processes(self, caller: Caller, package: str) -> bool:
        """``ActivityManager.killBackgroundProcesses``.

        Requires ``KILL_BACKGROUND_PROCESSES``.  A process running a
        foreground service (``startForeground``) survives — the exact
        mechanism DAPP uses to resist malicious termination
        (Section V-B).  Returns True if the process was killed.
        """
        if not caller.is_system and not caller.has_permission(
            "android.permission.KILL_BACKGROUND_PROCESSES"
        ):
            raise SecurityException(
                f"{caller.package} lacks KILL_BACKGROUND_PROCESSES"
            )
        registration = self._apps.get(package)
        if registration is None:
            return False
        if self._procfs.foreground_package == package:
            return False  # foreground activities are not killable this way
        app = registration.app
        if app is not None and getattr(app, "foreground_service", False):
            return False
        if app is not None:
            on_killed = getattr(app, "on_background_killed", None)
            if on_killed is not None:
                on_killed()
        return True

    def register_receiver(self, package: str, action: str, handler: BroadcastHandler,
                          required_permission: Optional[str] = None,
                          exported: bool = True) -> ReceiverRegistration:
        """Register a broadcast receiver for ``action``."""
        registration = ReceiverRegistration(
            package=package,
            action=action,
            handler=handler,
            required_permission=required_permission,
            exported=exported,
        )
        self._receivers.append(registration)
        return registration

    # -- activities -----------------------------------------------------------

    def start_activity(self, caller: Caller, intent: Intent) -> bool:
        """Deliver ``intent`` to its target activity after IPC latency.

        Returns True if the firewall allowed delivery (the stock
        firewall always does).  Raises :class:`ActivityNotFound` when the
        target package has no registered process.
        """
        target = self._apps.get(intent.target_package)
        if target is None:
            raise ActivityNotFound(
                f"no activity for intent to {intent.target_package!r}"
            )
        record = IntentRecord(
            intent=intent,
            sender_package=caller.package,
            sender_uid=caller.uid,
            sender_is_system=caller.is_system,
            recipient_package=intent.target_package,
            delivery_time_ns=self._kernel.clock.now_ns,
        )
        if not self.firewall.check_intent(record):
            return False
        self._kernel.call_later(
            INTENT_DELIVERY_LATENCY_NS, lambda: self._deliver(record)
        )
        return True

    def _deliver(self, record: IntentRecord) -> None:
        intent = record.intent
        target = self._apps.get(intent.target_package)
        if target is None:
            return  # process died between check and delivery
        top = self.stack[-1] if self.stack else None
        if (
            intent.single_top
            and top is not None
            and top.package == intent.target_package
            and top.activity == intent.target_activity
        ):
            # onNewIntent: the existing activity instance is reused —
            # the mode the Amazon command-injection attack relies on.
            top.intent = intent
        else:
            self.stack.append(
                ActivityFrame(
                    package=intent.target_package,
                    activity=intent.target_activity,
                    intent=intent,
                )
            )
        self._procfs.set_foreground(intent.target_package)
        self.delivered.append(record)
        if target.intent_handler is not None:
            target.intent_handler(intent)

    @property
    def foreground_package(self) -> Optional[str]:
        """Package owning the foreground activity."""
        return self._procfs.foreground_package

    def top_frame(self) -> Optional[ActivityFrame]:
        """The activity currently on top of the back stack."""
        return self.stack[-1] if self.stack else None

    def bring_to_foreground(self, package: str, activity: str = "Main") -> None:
        """User taps the app's launcher icon (no Intent firewall involved)."""
        self.stack.append(ActivityFrame(package, activity, Intent(target_package=package)))
        self._procfs.set_foreground(package)

    # -- broadcasts -----------------------------------------------------------

    def send_broadcast(self, caller: Caller, action: str,
                       extras: Optional[Dict[str, Any]] = None) -> int:
        """Broadcast ``action`` to matching receivers.

        Receivers protected by a ``required_permission`` only fire when
        the *sender* holds that permission — the guard the Xiaomi
        appstore was missing.  Returns the number of receivers the
        broadcast was scheduled for.
        """
        envelope = BroadcastEnvelope(
            action=action,
            extras=dict(extras or {}),
            sender_package=caller.package,
            time_ns=self._kernel.clock.now_ns,
        )
        delivered = 0
        for registration in list(self._receivers):
            if registration.action != action:
                continue
            if not registration.exported and registration.package != caller.package:
                continue
            if (
                registration.required_permission is not None
                and not caller.has_permission(registration.required_permission)
            ):
                continue
            handler = registration.handler
            self._kernel.call_later(
                INTENT_DELIVERY_LATENCY_NS, _broadcast_thunk(handler, envelope)
            )
            delivered += 1
        return delivered


def _broadcast_thunk(handler: BroadcastHandler,
                     envelope: BroadcastEnvelope) -> Callable[[], None]:
    """Bind loop variables for deferred broadcast delivery."""

    def run() -> None:
        handler(envelope)

    return run
