"""PackageInstallerActivity (PIA): the consent-dialog install path.

Non-privileged installers (side-loaded appstores, ordinary apps) cannot
call the PMS directly; they route through the PIA, which shows the user
a consent dialog with the package's name and icon.

To stop the APK changing while the dialog is up, the PIA records a
checksum of the APK's **manifest** before showing the dialog and
verifies it again just before install (Section III-B, "Attack on PIA").
Both weaknesses the paper demonstrates are reproduced:

- the checksum covers only the manifest, so a repackaged APK with the
  original manifest (and, embedded, the original label and icon)
  replaces the file undetected, and
- the label/icon the user approves come from the file contents, which
  the attacker controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List

from repro.errors import InstallAbortedError, InstallVerificationError
from repro.android.filesystem import Caller
from repro.android.packages import InstalledPackage
from repro.android.pms import PackageManagerService
from repro.sim.clock import millis
from repro.sim.kernel import Sleep


@dataclass(frozen=True)
class ConsentPrompt:
    """What the consent dialog showed the user."""

    package: str
    label: str
    icon: str
    requested_permissions: tuple
    installer: str


@dataclass
class ConsentUser:
    """A model of the human deciding on the consent dialog.

    ``decide`` sees exactly what the dialog displays.  The default user
    approves anything whose label/icon they recognize — i.e. everything,
    since the attacker embeds the original app's label and icon.
    """

    think_time_ns: int = millis(1500)
    decide: Callable[[ConsentPrompt], bool] = lambda prompt: True
    prompts_seen: List[ConsentPrompt] = field(default_factory=list)


class PackageInstallerActivity:
    """The system activity that mediates consented installs."""

    def __init__(self, pms: PackageManagerService, logcat=None) -> None:
        self._pms = pms
        self._logcat = logcat
        self.prompts: List[ConsentPrompt] = []

    def install(self, apk_path: str, caller: Caller,
                user: ConsentUser) -> Generator[Sleep, None, InstalledPackage]:
        """Run the consent flow as a simulation process.

        Yields while the user reads the dialog — the window the paper's
        Step-4 attack fills.  Returns the installed package or raises
        :class:`InstallAbortedError` / :class:`InstallVerificationError`.
        """
        staged = self._pms.parse_apk_file(apk_path)
        recorded_checksum = staged.manifest.checksum()
        prompt = ConsentPrompt(
            package=staged.package,
            label=staged.manifest.label,
            icon=staged.manifest.icon,
            requested_permissions=tuple(staged.manifest.uses_permissions),
            installer=caller.package,
        )
        self.prompts.append(prompt)
        user.prompts_seen.append(prompt)
        if self._logcat is not None:
            # The chatty log line the pre-4.1 logcat attack fed on.
            self._logcat.log(
                "PackageInstaller",
                f"showing consent for {prompt.package} from {apk_path}",
            )
        yield Sleep(user.think_time_ns)
        if not user.decide(prompt):
            raise InstallAbortedError(f"user declined install of {prompt.package}")
        final = self._pms.parse_apk_file(apk_path)
        if final.manifest.checksum() != recorded_checksum:
            raise InstallVerificationError(
                f"manifest changed while consent dialog was shown for {prompt.package}"
            )
        return self._pms.install_parsed(final, installer_package=caller.package)
