"""A minimal network: URL -> content, with latency and bandwidth.

Stands in for the appstore backends and carrier servers the real
installers download APKs and metadata from.  Download duration is
``latency + size / bandwidth`` in simulated time, so the attacks' timing
reasoning (e.g. "replace 500 ms after download completes") is
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Union

from repro.errors import DownloadError
from repro.sim.clock import millis

ContentProvider = Union[bytes, Callable[[], bytes]]

DEFAULT_BANDWIDTH_BYTES_PER_SEC = 4 * 1024 * 1024  # a decent LTE link
DEFAULT_LATENCY_NS = millis(80)


class Network:
    """URL registry with simulated transfer timing."""

    def __init__(self, bandwidth_bytes_per_sec: int = DEFAULT_BANDWIDTH_BYTES_PER_SEC,
                 latency_ns: int = DEFAULT_LATENCY_NS) -> None:
        self.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec
        self.latency_ns = latency_ns
        self._content: Dict[str, ContentProvider] = {}

    def host(self, url: str, content: ContentProvider) -> None:
        """Serve ``content`` (bytes, or a thunk evaluated per fetch) at ``url``."""
        self._content[url] = content

    def fetch(self, url: str) -> bytes:
        """Content at ``url``; raises :class:`DownloadError` on a 404."""
        provider = self._content.get(url)
        if provider is None:
            raise DownloadError(f"404: {url}")
        return provider() if callable(provider) else provider

    def exists(self, url: str) -> bool:
        """True if ``url`` is registered."""
        return url in self._content

    def host_flaky(self, url: str, content: bytes, failures: int) -> None:
        """Serve ``content`` at ``url`` after ``failures`` failed fetches.

        Failure injection for resilience testing: the first ``failures``
        fetches raise :class:`~repro.errors.DownloadError` (a dropped
        connection), subsequent ones succeed.
        """
        state = {"remaining": failures}

        def provider() -> bytes:
            if state["remaining"] > 0:
                state["remaining"] -= 1
                raise DownloadError(f"connection reset: {url}")
            return content

        self._content[url] = provider

    def transfer_time_ns(self, size_bytes: int) -> int:
        """Simulated time to move ``size_bytes`` over this link."""
        return self.latency_ns + (size_bytes * 1_000_000_000) // self.bandwidth_bytes_per_sec
