"""Simulated Android platform substrate.

This package re-implements, as a discrete-event simulation, every
Android building block the paper's App Installation Transaction (AIT)
touches:

- an in-memory virtual filesystem with POSIX-ish DAC, symlinks and
  inotify-style events (:mod:`repro.android.filesystem`),
- internal/external storage volumes with space accounting
  (:mod:`repro.android.storage`),
- the FUSE daemon wrapping /sdcard (:mod:`repro.android.fuse`),
- ``FileObserver`` (:mod:`repro.android.fileobserver`),
- the permission model with protection levels and the STORAGE
  same-group auto-grant (:mod:`repro.android.permissions`),
- APKs, manifests, signing and repackaging (:mod:`repro.android.apk`,
  :mod:`repro.android.signing`),
- the PackageManagerService and PackageInstallerActivity
  (:mod:`repro.android.pms`, :mod:`repro.android.pia`),
- the AOSP Download Manager (:mod:`repro.android.download_manager`),
- Intents, the ActivityManagerService and the IntentFirewall
  (:mod:`repro.android.intents`, :mod:`repro.android.ams`,
  :mod:`repro.android.intent_firewall`),
- the /proc side channel (:mod:`repro.android.proc`), and
- device profiles plus the :class:`~repro.android.system.AndroidSystem`
  facade that wires a whole device together.
"""

from repro.android.system import AndroidSystem
from repro.android.device import DeviceProfile

__all__ = ["AndroidSystem", "DeviceProfile"]
