"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``demo``     — run the quickstart hijack + defense story.
- ``attack``   — run one attack against one installer
  (``--installer amazon --attack fileobserver --defense fuse-dac``).
- ``tables``   — regenerate the Section IV measurement tables.
- ``audit``    — audit every bundled installer profile against the
  paper's developer suggestions.
- ``fleet``    — run a sharded campaign across a worker pool
  (``--installs 10000 --workers 4``).
- ``analyze``  — run the sharded measurement study over a streaming
  corpus (``--corpus play --apps 100000 --shards 16 --workers 4
  --cache .analysis-cache``); stdout is deterministic for any
  shard/worker split.
- ``trace``    — forensics over a recorded JSONL trace:
  ``trace summary``, ``trace critpath``, ``trace windows``,
  ``trace diff`` (``python -m repro trace windows --trace t.jsonl``).
- ``fuzz``     — seeded scenario fuzzing under invariant oracles
  (``--seed 7 --budget 200``); failures shrink into the regression
  corpus at ``tests/fuzz/corpus/``.
- ``serve``    — run the resident campaign service (warm worker pool,
  crash-safe job journal): ``repro serve --state-dir .repro-serve``.
- ``submit``   — enqueue a campaign (or ``--case`` fuzz case) on a
  running daemon; ``--wait`` streams progress until it finishes.
- ``jobs``     — list the daemon's jobs and health counters
  (``--follow`` re-renders until interrupted).
- ``watch``    — stream one job's shard-completion frames live.
- ``metrics``  — Prometheus text exposition: scrape a running daemon
  (``repro metrics --serve``) or render a finished job's stored
  telemetry offline (``repro metrics --job ID``).
- ``top``      — live ops view over the daemon: health, queue depth,
  per-job shard rates and ETAs, refreshed every ``--interval``.

``fleet`` and ``analyze`` accept ``--telemetry`` (per-shard wall-clock
CPU/RSS accounting, reported beside the deterministic output) and
``--profile-shards`` (cProfile per shard, merged into one hotspot
table under ``benchmarks/results/``).

Every simulation command accepts ``--seed`` for reproducible runs; the
``trace`` family is a pure function of its input files, so its output
is byte-identical for identical traces.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.attacks.base import fingerprint_for
from repro.core.scenario import Scenario
from repro.engine.spec import ATTACKS, DEVICES
from repro.installers import all_installer_types, installer_by_name

DEFAULT_SEED = 7

#: Where ``serve``/``submit``/``jobs``/``watch`` keep daemon state
#: unless pointed elsewhere.
DEFAULT_STATE_DIR = ".repro-serve"


def _seed_of(args: argparse.Namespace) -> int:
    return DEFAULT_SEED if args.seed is None else args.seed


def _obs_of(args: argparse.Namespace):
    """(recorder, metrics) sinks for an in-process command, or Nones."""
    from repro.obs import MetricsRegistry, TraceRecorder

    recorder = TraceRecorder() if args.trace else None
    metrics = MetricsRegistry() if args.metrics else None
    return recorder, metrics


def _emit_obs(args: argparse.Namespace, records, snapshot) -> None:
    """Export the trace/metrics the user asked for.

    ``records``/``snapshot`` may be None (observability off, or a
    command with nothing to record — the export is then valid but
    empty, so downstream tooling can rely on the flags always
    producing well-formed output).
    """
    from repro.obs import (
        empty_snapshot,
        render_metrics,
        write_trace_jsonl,
    )

    if args.trace:
        count = write_trace_jsonl(args.trace, records or [])
        print(f"trace: {count} record(s) -> {args.trace}", file=sys.stderr)
    if args.metrics:
        print(render_metrics(snapshot if snapshot is not None
                             else empty_snapshot()))


def _run_demo_inline(args: argparse.Namespace) -> int:
    from repro.attacks.toctou import FileObserverHijacker

    seed = _seed_of(args)
    recorder, metrics = _obs_of(args)
    for defenses in ((), ("fuse-dac",)):
        scenario = Scenario.build(
            installer=installer_by_name("amazon"),
            attacker_factory=lambda s: FileObserverHijacker(
                fingerprint_for(installer_by_name("amazon"))
            ),
            defenses=defenses,
            seed=seed,
            recorder=recorder,
            metrics=metrics,
        )
        scenario.publish_app("com.bank.app", label="MyBank")
        outcome = scenario.run_install("com.bank.app")
        label = "defended" if defenses else "undefended"
        print(f"[{label}] hijacked={outcome.hijacked} "
              f"signer={outcome.installed_certificate_owner}")
    _emit_obs(args,
              recorder.records() if recorder is not None else None,
              metrics.snapshot() if metrics is not None else None)
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    installer_cls = installer_by_name(args.installer)
    attacker_cls = ATTACKS[args.attack]
    factory = None
    if attacker_cls is not None:
        factory = lambda s: attacker_cls(fingerprint_for(installer_cls))
    recorder, metrics = _obs_of(args)
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=factory,
        defenses=tuple(args.defense),
        seed=_seed_of(args),
        recorder=recorder,
        metrics=metrics,
    )
    scenario.publish_app(args.package, label="Target App")
    outcome = scenario.run_install(args.package)
    print(outcome.trace.describe())
    print(f"installed : {outcome.installed}")
    print(f"hijacked  : {outcome.hijacked}")
    if outcome.error:
        print(f"error     : {outcome.error}")
    for report in scenario.defense_reports():
        for alarm in report.alarms:
            print(f"[{report.defense_name}] ALARM: {alarm}")
        for blocked in report.blocked_operations:
            print(f"[{report.defense_name}] BLOCKED: {blocked}")
    _emit_obs(args,
              recorder.records() if recorder is not None else None,
              metrics.snapshot() if metrics is not None else None)
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.factory_images import generate_fleet
    from repro.measurement.report import (
        render_installer_breakdown,
        render_table4,
        render_table5,
        render_table6,
    )
    from repro.measurement.tables import (
        compute_table2,
        compute_table3,
        compute_table4,
        compute_table5,
        compute_table6,
    )

    print(render_installer_breakdown("Table II (Google Play apps)",
                                     compute_table2()))
    print()
    print(render_installer_breakdown("Table III (pre-installed apps)",
                                     compute_table3()))
    print()
    print(render_table4(compute_table4()))
    print()
    # The corpus ships with its own calibrated default seed; --seed
    # overrides it for sensitivity runs.
    fleet = (generate_fleet() if args.seed is None
             else generate_fleet(seed=args.seed))
    print(render_table5(compute_table5(fleet)))
    print()
    print(render_table6(compute_table6(fleet)))
    # The tables are computed from static corpora, not simulator runs,
    # so there is nothing to trace; honour the flags with valid empty
    # output rather than surprising the caller.
    _emit_obs(args, None, None)
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.toolkit.auditor import audit_profile
    from repro.toolkit.secure_installer import ToolkitInstaller

    targets = dict(all_installer_types())
    targets["toolkit"] = ToolkitInstaller
    for name in sorted(targets):
        findings = audit_profile(targets[name].profile)
        print(f"{name} ({targets[name].profile.package})")
        if not findings:
            print("  clean")
        for finding in findings:
            print(f"  {finding}")
            print(f"      {finding.detail}")
        print()
    # Static audit, no simulator: valid empty observability output.
    _emit_obs(args, None, None)
    return 0


def _emit_profile(args: argparse.Namespace, report, command: str) -> None:
    """Write the merged shard-profile hotspot table, if one was asked for.

    The table lands in ``benchmarks/results/`` next to the bench
    baselines; the path note goes to stderr so profiled runs keep
    their stdout contract.
    """
    if not args.profile_shards:
        return
    from pathlib import Path

    from repro.obs.runtime import write_hotspots

    blobs = [shard.profile for shard in report.shards
             if getattr(shard, "profile", None)]
    out = args.profile_out or str(
        Path("benchmarks") / "results" / f"HOTSPOTS_{command}.txt")
    path = write_hotspots(out, blobs)
    print(f"profile: {len(blobs)} shard profile(s) -> {path}",
          file=sys.stderr)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.engine import (
        CampaignSpec,
        ConsoleProgress,
        MetricsProgress,
        NullProgress,
        TeeProgress,
        run_fleet,
    )
    from repro.obs import render_metrics, write_trace_jsonl

    observe = bool(args.trace or args.metrics)
    spec = CampaignSpec(
        installs=args.installs,
        installer=args.installer,
        attack=args.attack,
        defenses=tuple(args.defense),
        device=args.device,
        seed=_seed_of(args),
        chaos=args.chaos,
        observe=observe,
        keep_outcomes=args.keep_outcomes,
        watch_queue_depth=args.watch_depth,
        watch_drain_interval_ns=args.watch_drain_ns,
        watch_coalesce=args.watch_coalesce,
    )
    progress = NullProgress() if args.quiet else ConsoleProgress()
    engine_metrics = None
    if args.metrics:
        engine_metrics = MetricsProgress()
        progress = TeeProgress(progress, engine_metrics)
    checkpoint = None
    if args.checkpoint:
        from repro.errors import ReproError
        from repro.serve.checkpoint import ShardJournal

        if args.shards is None:
            # The default shard count tracks the worker count, which
            # varies by machine; a resumable run must pin its layout.
            raise ReproError(
                "--checkpoint needs an explicit --shards count so the "
                "journal's shard layout is stable across resumes")
        checkpoint = ShardJournal(args.checkpoint, spec, args.shards)
    report = run_fleet(
        spec,
        shards=args.shards,
        workers=args.workers,
        backend=args.backend,
        shard_timeout=args.shard_timeout,
        max_retries=args.retries,
        progress=progress,
        checkpoint=checkpoint,
        telemetry=args.telemetry,
        profile_shards=args.profile_shards,
    )
    print(report.render())
    _emit_profile(args, report, "fleet")
    if args.trace:
        count = write_trace_jsonl(args.trace, report.trace_records())
        print(f"trace: {count} record(s) -> {args.trace}", file=sys.stderr)
    if args.metrics:
        print(render_metrics(report.metrics, title="fleet metrics"))
        print(engine_metrics.render())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.pipeline import AnalysisSpec, run_analysis
    from repro.engine import (
        ConsoleProgress,
        MetricsProgress,
        NullProgress,
        TeeProgress,
    )
    from repro.obs import render_metrics, write_trace_jsonl

    observe = bool(args.trace or args.metrics)
    spec = AnalysisSpec(
        corpus=args.corpus,
        apps=args.apps,
        # The corpora are calibrated at their own default seed (2016),
        # unlike the simulator commands' seed 7.
        seed=2016 if args.seed is None else args.seed,
        observe=observe,
        chaos=args.chaos,
        cache_dir=args.cache,
    )
    progress = NullProgress() if args.quiet else ConsoleProgress()
    engine_metrics = None
    if args.metrics:
        engine_metrics = MetricsProgress()
        progress = TeeProgress(progress, engine_metrics)
    report = run_analysis(
        spec,
        shards=args.shards,
        workers=args.workers,
        backend=args.backend,
        progress=progress,
        telemetry=args.telemetry,
        profile_shards=args.profile_shards,
    )
    # Stdout carries only the deterministic tables (CI byte-compares
    # it across shard/worker splits); wall-clock, telemetry and
    # cache-state lines go to stderr.
    print(report.render())
    print(f"wall: {report.wall_seconds:.2f}s "
          f"({report.throughput:.0f}/s, workers={report.workers}, "
          f"backend={report.backend})", file=sys.stderr)
    if args.telemetry and report.telemetry:
        from repro.obs.runtime import TelemetryRollup

        print("telemetry: "
              + TelemetryRollup.from_dict(report.telemetry).render(),
              file=sys.stderr)
    _emit_profile(args, report, "analyze")
    if args.cache:
        print(f"cache: {report.cache_hits} hit(s), "
              f"{report.cache_misses} analyzed", file=sys.stderr)
    if args.trace:
        count = write_trace_jsonl(args.trace, report.trace_records())
        print(f"trace: {count} record(s) -> {args.trace}", file=sys.stderr)
    if args.metrics:
        print(render_metrics(report.metrics, title="analysis metrics"))
        print(engine_metrics.render())
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import Fuzzer, default_corpus_dir
    from repro.obs import NULL_RECORDER

    if args.replay:
        return _replay_corpus_files(args)
    recorder, metrics = _obs_of(args)
    corpus_dir = None if args.no_corpus else (
        args.corpus or default_corpus_dir())
    fuzzer = Fuzzer(
        fuzz_seed=_seed_of(args),
        oracles=tuple(args.oracle),
        backend=args.backend,
        workers=args.workers,
        force_shards=args.shards,
        sabotage_defense=args.break_defense,
        strict_lossy=args.strict_lossy,
        corpus_dir=corpus_dir,
        recorder=recorder if recorder is not None else NULL_RECORDER,
        metrics=metrics,
    )
    report = fuzzer.run(args.budget)
    print(report.render())
    _emit_obs(args,
              recorder.records() if recorder is not None else None,
              metrics.snapshot() if metrics is not None else None)
    return 0 if report.ok else 1


def _replay_corpus_files(args: argparse.Namespace) -> int:
    """Replay explicit corpus entry files against their expectations.

    Exit 0 iff every entry meets its recorded ``expect``; each entry's
    recorded ``strict_lossy``/``sabotage`` knobs govern its judging
    (the CLI flags do not override them).
    """
    import json
    from pathlib import Path

    from repro.fuzz.corpus import replay_entry

    failures = 0
    for name in args.replay:
        path = Path(name)
        entry = json.loads(path.read_text(encoding="utf-8"))
        ok, violations = replay_entry(entry, backend=args.backend)
        verdict = "ok" if ok else "FAILED"
        print(f"replay {path.name}: expect={entry.get('expect')} "
              f"-> {verdict}")
        for violation in violations:
            print(f"  {violation}")
        if not ok:
            failures += 1
    print(f"replay: {len(args.replay) - failures}/{len(args.replay)} "
          "entr(ies) met expectations")
    return 0 if failures == 0 else 1


def _client_of(args: argparse.Namespace):
    """A :class:`ServeClient` for the daemon the args point at."""
    from pathlib import Path

    from repro.serve import ServeClient

    if getattr(args, "port", None):
        return ServeClient(host="127.0.0.1", port=args.port)
    socket_path = args.socket or str(Path(args.state_dir) / "serve.sock")
    return ServeClient(socket_path=socket_path)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import run_daemon

    if args.stop:
        _client_of(args).shutdown()
        print("serve: shutdown requested")
        return 0

    def on_ready(daemon) -> None:
        where = daemon.socket_path or f"127.0.0.1:{daemon.port}"
        print(f"serve: listening on {where} "
              f"(state: {args.state_dir})", flush=True)

    return run_daemon(
        args.state_dir,
        socket_path=args.socket,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        seed=_seed_of(args),
        on_ready=on_ready,
    )


def _print_job_line(job: dict) -> None:
    done, total = job.get("progress") or (0, 0)
    progress = f"{done}/{total}" if total else "-"
    label = f"  [{job['label']}]" if job.get("label") else ""
    print(f"{job['job_id']}  {job['state']:<9} {job['kind']:<8} "
          f"shards {progress}{label}")


def _print_terminal(job: dict) -> None:
    print(f"{job['job_id']}: {job['state']}")
    if job.get("error"):
        print(f"  error: {job['error']}")
    summary = job.get("summary") or {}
    for name in ("runs", "installs_completed", "hijacks", "blocked",
                 "install_failures"):
        if name in summary:
            print(f"  {name:<19}: {summary[name]}")


def _watch_frames(client, job_id: str) -> dict:
    """Stream one job's frames to stdout; returns the terminal job."""

    def on_frame(frame: dict) -> None:
        event = frame.get("event")
        if event == "shard":
            stats = frame.get("stats") or {}
            print(f"  shard {frame['shard']:>3} done "
                  f"({frame['done']}/{frame['total']})  "
                  f"runs={stats.get('runs', 0)} "
                  f"hijacks={stats.get('hijacks', 0)}", flush=True)
        elif event == "status":
            _print_job_line(frame["job"])

    frames = client.watch(job_id, on_frame=on_frame)
    return frames[-1]["job"]


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.engine.spec import CampaignSpec

    client = _client_of(args)
    if args.case:
        from repro.fuzz.gen import FuzzCase

        with open(args.case, "r", encoding="utf-8") as handle:
            case = FuzzCase.from_json(handle.read())
        job = client.submit_fuzz(case, priority=args.priority,
                                 label=args.label)
    else:
        spec = CampaignSpec(
            installs=args.installs,
            installer=args.installer,
            attack=args.attack,
            defenses=tuple(args.defense),
            device=args.device,
            seed=_seed_of(args),
            observe=not args.no_observe,
            keep_outcomes=args.keep_outcomes,
        )
        job = client.submit_campaign(
            spec, shards=args.shards, priority=args.priority,
            label=args.label, derive_seed=args.derive_seed)
    print(f"submitted {job['job_id']} ({job['state']}) "
          f"seed={job['spec']['seed']}")
    if not args.wait:
        return 0
    final = _watch_frames(client, job["job_id"])
    _print_terminal(final)
    return 0 if final["state"] == "done" else 1


def _print_health(health: dict) -> None:
    print(f"health: queue={health['queue_depth']} "
          f"running={health['running'] or '-'} "
          f"workers={health['workers']} backend={health['backend']} "
          f"completed={health['jobs_completed']} "
          f"failed={health['jobs_failed']} "
          f"restarts={health['worker_restarts']} "
          f"uptime={health['uptime_s']}s")
    states = health.get("jobs_by_state") or {}
    if states:
        from repro.serve.protocol import JOB_STATES

        rendered = " ".join(f"{state}={states.get(state, 0)}"
                            for state in JOB_STATES)
        print(f"  jobs by state: {rendered}")
    pids = health.get("worker_pids") or {}
    if pids:
        rendered = " ".join(f"{slot}:{pid}"
                            for slot, pid in sorted(pids.items()))
        print(f"  warm workers : {rendered}")
    if health.get("telemetry"):
        from repro.obs.runtime import TelemetryRollup

        rollup = TelemetryRollup.from_dict(health["telemetry"])
        print(f"  telemetry    : {rollup.render()}")


def _cmd_jobs(args: argparse.Namespace) -> int:
    import time

    client = _client_of(args)
    try:
        while True:
            listing = client.jobs()
            for job in listing["jobs"]:
                _print_job_line(job)
            _print_health(listing["health"])
            if not args.follow:
                return 0
            sys.stdout.flush()
            time.sleep(args.interval)
            print()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.runtime import render_prometheus, validate_exposition

    if args.job:
        # Offline: render the job's stored telemetry rollup without a
        # daemon round trip (works after the service has shut down).
        import json

        from repro.errors import ReproError
        from repro.serve.checkpoint import JobStore

        path = JobStore(args.state_dir).result_path(args.job)
        if not path.exists():
            raise ReproError(
                f"job {args.job} has no stored result at {path} "
                f"(not finished yet?)")
        result = json.loads(path.read_text(encoding="utf-8"))
        telemetry = result.get("telemetry")
        if not telemetry:
            raise ReproError(
                f"job {args.job} carries no telemetry (daemon ran "
                f"with telemetry disabled?)")
        text = render_prometheus(job_rollups={args.job: telemetry})
    else:
        # Default (and explicit --serve): scrape the live daemon.
        text = _client_of(args).metrics()
    count = validate_exposition(text)
    sys.stdout.write(text if text.endswith("\n") else text + "\n")
    print(f"metrics: {count} valid sample(s)", file=sys.stderr)
    return 0


def _rate_line(job: dict, prev: dict, now: float) -> str:
    """Shard-rate / ETA suffix for a running job's ``top`` row."""
    done, total = job.get("progress") or (0, 0)
    seen = prev.get(job["job_id"])
    prev[job["job_id"]] = (done, now)
    if job["state"] != "running" or not seen:
        return ""
    prev_done, prev_at = seen
    elapsed = now - prev_at
    if elapsed <= 0 or done <= prev_done:
        return ""
    rate = (done - prev_done) / elapsed
    eta = (total - done) / rate if rate > 0 else 0.0
    return f"  {rate:.2f} shard/s  eta {eta:.0f}s"


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    client = _client_of(args)
    prev: dict = {}
    frame = 0
    try:
        while True:
            listing = client.jobs()
            now = time.monotonic()
            if sys.stdout.isatty():  # pragma: no cover - interactive
                sys.stdout.write("\x1b[2J\x1b[H")
            print(f"repro top — frame {frame + 1}")
            _print_health(listing["health"])
            for job in listing["jobs"]:
                done, total = job.get("progress") or (0, 0)
                progress = f"{done}/{total}" if total else "-"
                label = f"  [{job['label']}]" if job.get("label") else ""
                print(f"  {job['job_id']}  {job['state']:<9} "
                      f"{job['kind']:<8} shards {progress}"
                      f"{_rate_line(job, prev, now)}{label}")
            frame += 1
            if args.iterations and frame >= args.iterations:
                return 0
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    final = _watch_frames(_client_of(args), args.job)
    _print_terminal(final)
    return 0 if final["state"] == "done" else 1


def _resolve_trace_source(args: argparse.Namespace) -> str:
    """The trace file a ``trace`` subcommand should read.

    Either an explicit ``--trace PATH``, or ``--job ID`` which looks
    the archived trace up in the serve state directory.
    """
    from repro.errors import ReproError

    job_id = getattr(args, "job", None)
    if job_id:
        from repro.serve.checkpoint import JobStore

        path = JobStore(args.state_dir).trace_path(job_id)
        if not path.exists():
            raise ReproError(
                f"job {job_id} has no archived trace at {path} "
                f"(not finished, or submitted with --no-observe?)")
        return str(path)
    if not args.trace:
        raise ReproError("trace commands need --trace PATH or --job ID")
    return args.trace


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        critical_path,
        diff_traces,
        iter_trace_jsonl,
        load_trace_jsonl,
        profile_trace,
        render_critical_path,
        render_diff,
        render_profile,
        render_windows,
        window_forensics,
    )

    source = _resolve_trace_source(args)
    if args.trace_command == "summary":
        # Streams: per-name aggregates only, never the whole trace.
        print(render_profile(profile_trace(iter_trace_jsonl(source))))
    elif args.trace_command == "critpath":
        path = critical_path(load_trace_jsonl(source), shard=args.shard)
        print(render_critical_path(path))
    elif args.trace_command == "windows":
        print(render_windows(window_forensics(iter_trace_jsonl(source))))
    elif args.trace_command == "diff":
        diff = diff_traces(load_trace_jsonl(source),
                           load_trace_jsonl(args.against))
        print(render_diff(diff, max_detail=args.max_detail))
        return 0 if diff.empty else 1
    return 0


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """Wall-clock accounting flags shared by ``fleet`` and ``analyze``."""
    parser.add_argument("--telemetry", action="store_true",
                        help="sample per-shard CPU/RSS/wall usage and "
                             "report the rollup beside the "
                             "deterministic output")
    parser.add_argument("--profile-shards", action="store_true",
                        help="cProfile every shard and merge the stats "
                             "into one hotspot table under "
                             "benchmarks/results/")
    parser.add_argument("--profile-out", metavar="PATH", default=None,
                        help="hotspot table path (default: "
                             "benchmarks/results/HOTSPOTS_<cmd>.txt)")


#: Defense names the scenario layer accepts (keep in sync with
#: :data:`repro.core.scenario.VALID_DEFENSES`).
_DEFENSE_CHOICES = ["dapp", "dapp-rescan", "fuse-dac", "intent-detection",
                    "intent-origin"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ghost Installer (DSN 2017) reproduction toolkit",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=None,
                        help="RNG seed for reproducible runs")
    common.add_argument("--trace", metavar="PATH", default=None,
                        help="export a simulated-time trace as JSONL")
    common.add_argument("--metrics", action="store_true",
                        help="collect and print deterministic metrics")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quickstart hijack + defense",
                   parents=[common])

    attack = sub.add_parser("attack", help="run one attack scenario",
                            parents=[common])
    attack.add_argument("--installer", default="amazon",
                        choices=sorted(all_installer_types()))
    attack.add_argument("--attack", default="fileobserver",
                        choices=sorted(ATTACKS))
    attack.add_argument("--defense", action="append", default=[],
                        choices=_DEFENSE_CHOICES)
    attack.add_argument("--package", default="com.victim.app")

    sub.add_parser("tables", help="regenerate Tables II-VI",
                   parents=[common])
    sub.add_parser("audit", help="audit installer designs",
                   parents=[common])

    fleet = sub.add_parser(
        "fleet", parents=[common],
        help="run a sharded campaign across a worker pool")
    fleet.add_argument("--installs", type=int, default=1000,
                       help="total installs in the campaign")
    fleet.add_argument("--installer", default="amazon",
                       choices=sorted(all_installer_types()))
    fleet.add_argument("--attack", default="none", choices=sorted(ATTACKS))
    fleet.add_argument("--defense", action="append", default=[],
                       choices=_DEFENSE_CHOICES)
    fleet.add_argument("--device", default="nexus5",
                       choices=sorted(DEVICES))
    fleet.add_argument("--watch-depth", type=int, default=None,
                       metavar="N",
                       help="bound every FileObserver watch queue to N "
                            "pending events (default: lossless)")
    fleet.add_argument("--watch-drain-ns", type=int, default=None,
                       metavar="NS",
                       help="simulated per-event drain interval for "
                            "bounded watch queues")
    fleet.add_argument("--watch-coalesce", action="store_true",
                       help="drop a watch event when it duplicates the "
                            "newest queued one (inotify-style merge)")
    fleet.add_argument("--shards", type=int, default=None,
                       help="shard count (default: one per worker)")
    fleet.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: cores, max 4)")
    fleet.add_argument("--backend", default="auto",
                       choices=["auto", "process", "serial"])
    fleet.add_argument("--shard-timeout", type=float, default=None,
                       help="per-shard timeout in seconds")
    fleet.add_argument("--retries", type=int, default=2,
                       help="pool retries per shard before serial fallback")
    fleet.add_argument("--chaos", default=None, metavar="MODE:I,J",
                       help="failure injection for pool workers "
                            "(crash:|hang:|error: + shard indices)")
    fleet.add_argument("--keep-outcomes", type=int, default=None,
                       metavar="N",
                       help="retain at most N per-run outcome records "
                            "per shard (default: all; counters always "
                            "cover every run)")
    fleet.add_argument("--checkpoint", metavar="DIR", default=None,
                       help="journal completed shards to DIR so a "
                            "killed run resumes bit-identically "
                            "(requires an explicit --shards)")
    fleet.add_argument("--quiet", action="store_true",
                       help="suppress progress lines")
    _add_telemetry_flags(fleet)

    from repro.analysis.pipeline import ANALYSIS_CORPORA

    analyze = sub.add_parser(
        "analyze", parents=[common],
        help="run the sharded measurement study (classifier, redirect "
             "scan, hare, platform keys)")
    analyze.add_argument("--corpus", default="play",
                         choices=list(ANALYSIS_CORPORA),
                         help="workload: play / preinstalled app corpus "
                              "or the factory-image fleet")
    analyze.add_argument("--apps", type=int, default=None,
                         help="scale the corpus to N apps — or, for "
                              "--corpus images, N factory images — at "
                              "the paper's trait rates (default: paper "
                              "size)")
    analyze.add_argument("--shards", type=int, default=None,
                         help="shard count (default: one per worker)")
    analyze.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: cores, max 4)")
    analyze.add_argument("--backend", default="auto",
                         choices=["auto", "process", "serial"])
    analyze.add_argument("--cache", metavar="DIR", default=None,
                         help="content-addressed analysis cache: re-runs "
                              "only re-analyze apps whose code or "
                              "consulted detector versions changed")
    analyze.add_argument("--chaos", default=None, metavar="MODE:I,J",
                         help="failure injection for pool workers "
                              "(crash:|hang:|error: + shard indices)")
    analyze.add_argument("--quiet", action="store_true",
                         help="suppress progress lines")
    _add_telemetry_flags(analyze)

    from repro.fuzz.oracles import oracle_names

    fuzz = sub.add_parser(
        "fuzz", parents=[common],
        help="seeded scenario fuzzing under invariant oracles")
    fuzz.add_argument("--budget", type=int, default=200,
                      help="number of generated cases to run")
    fuzz.add_argument("--oracle", action="append", default=[],
                      choices=list(oracle_names()),
                      help="oracle(s) to check (default: all)")
    fuzz.add_argument("--shards", type=int, default=None,
                      help="engine-backed mode: force every case onto "
                           "this shard count (case chaos is dropped)")
    fuzz.add_argument("--workers", type=int, default=None,
                      help="worker processes for non-serial backends")
    fuzz.add_argument("--backend", default="serial",
                      choices=["auto", "process", "serial"],
                      help="fleet backend for case execution")
    fuzz.add_argument("--corpus", metavar="DIR", default=None,
                      help="regression corpus directory "
                           "(default: tests/fuzz/corpus)")
    fuzz.add_argument("--no-corpus", action="store_true",
                      help="do not write shrunk failures to the corpus")
    fuzz.add_argument("--break-defense", default=None, metavar="NAME",
                      choices=_DEFENSE_CHOICES,
                      help="test-only: suppress one defense's reactions "
                           "to prove the oracles notice")
    fuzz.add_argument("--strict-lossy", action="store_true",
                      help="hold plain dapp to full completeness even on "
                           "lossy-watcher devices (proves watcher-flood "
                           "defeats the notify-only detector)")
    fuzz.add_argument("--replay", action="append", default=[],
                      metavar="FILE",
                      help="replay corpus entry FILE(s) against their "
                           "recorded expectations instead of fuzzing")

    serve_common = argparse.ArgumentParser(add_help=False)
    serve_common.add_argument("--state-dir", metavar="DIR",
                              default=DEFAULT_STATE_DIR,
                              help="daemon state directory "
                                   f"(default: {DEFAULT_STATE_DIR})")
    serve_common.add_argument("--socket", metavar="PATH", default=None,
                              help="unix socket path (default: "
                                   "<state-dir>/serve.sock)")
    serve_common.add_argument("--port", type=int, default=None,
                              help="listen/connect on local TCP instead "
                                   "of the unix socket")

    serve = sub.add_parser(
        "serve", parents=[serve_common],
        help="run the resident campaign service (warm worker pool)")
    serve.add_argument("--workers", type=int, default=None,
                       help="warm pool width (default: cores, max 4)")
    serve.add_argument("--backend", default="auto",
                       choices=["auto", "process", "serial"])
    serve.add_argument("--seed", type=int, default=None,
                       help="service seed for derived per-job seeds")
    serve.add_argument("--stop", action="store_true",
                       help="ask a running daemon to drain and stop")

    submit = sub.add_parser(
        "submit", parents=[serve_common],
        help="enqueue a campaign (or fuzz case) on a running daemon")
    submit.add_argument("--case", metavar="FILE", default=None,
                        help="submit this FuzzCase JSON instead of "
                             "a campaign")
    submit.add_argument("--installs", type=int, default=1000)
    submit.add_argument("--installer", default="amazon",
                        choices=sorted(all_installer_types()))
    submit.add_argument("--attack", default="none", choices=sorted(ATTACKS))
    submit.add_argument("--defense", action="append", default=[],
                        choices=_DEFENSE_CHOICES)
    submit.add_argument("--device", default="nexus5",
                        choices=sorted(DEVICES))
    submit.add_argument("--shards", type=int, default=None,
                        help="shard count (default: pool width)")
    submit.add_argument("--seed", type=int, default=None,
                        help="campaign seed (default: 7)")
    submit.add_argument("--derive-seed", action="store_true",
                        help="let the service assign a deterministic "
                             "per-job seed instead of --seed")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first (FIFO within a level)")
    submit.add_argument("--label", default="",
                        help="free-form tag shown in job listings")
    submit.add_argument("--no-observe", action="store_true",
                        help="skip trace archiving for this job")
    submit.add_argument("--keep-outcomes", type=int, default=None,
                        metavar="N",
                        help="retain at most N outcome records per shard")
    submit.add_argument("--wait", action="store_true",
                        help="stream progress until the job finishes")

    jobs = sub.add_parser("jobs", parents=[serve_common],
                          help="list the daemon's jobs and health")
    jobs.add_argument("--follow", action="store_true",
                      help="re-render the listing until interrupted")
    jobs.add_argument("--interval", type=float, default=2.0,
                      help="seconds between --follow refreshes")

    metrics = sub.add_parser(
        "metrics", parents=[serve_common],
        help="Prometheus text exposition from the daemon or a job")
    metrics.add_argument("--serve", action="store_true",
                         help="scrape the running daemon (the default "
                              "when --job is not given)")
    metrics.add_argument("--job", metavar="ID", default=None,
                         help="render this finished job's stored "
                              "telemetry offline instead of scraping")

    top = sub.add_parser(
        "top", parents=[serve_common],
        help="live ops view: health, queue, per-job rates and ETAs")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N frames (0: until interrupted)")

    watch = sub.add_parser(
        "watch", parents=[serve_common],
        help="stream one job's shard frames until it finishes")
    watch.add_argument("job", help="job id to watch")

    trace = sub.add_parser(
        "trace", help="forensics over a recorded JSONL trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_common = argparse.ArgumentParser(add_help=False)
    trace_common.add_argument("--trace", metavar="PATH", default=None,
                              help="JSONL trace file to analyze")
    trace_common.add_argument("--job", metavar="ID", default=None,
                              help="analyze the archived trace of this "
                                   "serve job instead of a file")
    trace_common.add_argument("--state-dir", metavar="DIR",
                              default=DEFAULT_STATE_DIR,
                              help="serve state directory for --job "
                                   f"(default: {DEFAULT_STATE_DIR})")
    trace_sub.add_parser(
        "summary", parents=[trace_common],
        help="per-name/per-layer latency profile with percentiles")
    critpath = trace_sub.add_parser(
        "critpath", parents=[trace_common],
        help="critical path of the longest recorded span tree")
    critpath.add_argument("--shard", type=int, default=None,
                          help="restrict to one shard of a fleet trace")
    trace_sub.add_parser(
        "windows", parents=[trace_common],
        help="armed->strike window widths split by hijack outcome")
    diff = trace_sub.add_parser(
        "diff", parents=[trace_common],
        help="structural diff of two traces (exit 1 when they differ)")
    diff.add_argument("--against", metavar="PATH", required=True,
                      help="second JSONL trace to compare against")
    diff.add_argument("--max-detail", type=int, default=20,
                      help="changed/added records to list per section")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "demo":
            return _run_demo_inline(args)
        if args.command == "attack":
            return _cmd_attack(args)
        if args.command == "tables":
            return _cmd_tables(args)
        if args.command == "audit":
            return _cmd_audit(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "jobs":
            return _cmd_jobs(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe reader (head, less, ...) closed early.
        # Detach stdout so interpreter shutdown does not retry the
        # flush and print a traceback; 141 mirrors SIGPIPE death.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
