"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``demo``     — run the quickstart hijack + defense story.
- ``attack``   — run one attack against one installer
  (``--installer amazon --attack fileobserver --defense fuse-dac``).
- ``tables``   — regenerate the Section IV measurement tables.
- ``audit``    — audit every bundled installer profile against the
  paper's developer suggestions.
- ``fleet``    — run a sharded campaign across a worker pool
  (``--installs 10000 --workers 4``).
- ``trace``    — forensics over a recorded JSONL trace:
  ``trace summary``, ``trace critpath``, ``trace windows``,
  ``trace diff`` (``python -m repro trace windows --trace t.jsonl``).
- ``fuzz``     — seeded scenario fuzzing under invariant oracles
  (``--seed 7 --budget 200``); failures shrink into the regression
  corpus at ``tests/fuzz/corpus/``.

Every simulation command accepts ``--seed`` for reproducible runs; the
``trace`` family is a pure function of its input files, so its output
is byte-identical for identical traces.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.attacks.base import fingerprint_for
from repro.core.scenario import Scenario
from repro.engine.spec import ATTACKS, DEVICES
from repro.installers import all_installer_types, installer_by_name

DEFAULT_SEED = 7


def _seed_of(args: argparse.Namespace) -> int:
    return DEFAULT_SEED if args.seed is None else args.seed


def _obs_of(args: argparse.Namespace):
    """(recorder, metrics) sinks for an in-process command, or Nones."""
    from repro.obs import MetricsRegistry, TraceRecorder

    recorder = TraceRecorder() if args.trace else None
    metrics = MetricsRegistry() if args.metrics else None
    return recorder, metrics


def _emit_obs(args: argparse.Namespace, records, snapshot) -> None:
    """Export the trace/metrics the user asked for.

    ``records``/``snapshot`` may be None (observability off, or a
    command with nothing to record — the export is then valid but
    empty, so downstream tooling can rely on the flags always
    producing well-formed output).
    """
    from repro.obs import (
        empty_snapshot,
        render_metrics,
        write_trace_jsonl,
    )

    if args.trace:
        count = write_trace_jsonl(args.trace, records or [])
        print(f"trace: {count} record(s) -> {args.trace}", file=sys.stderr)
    if args.metrics:
        print(render_metrics(snapshot if snapshot is not None
                             else empty_snapshot()))


def _run_demo_inline(args: argparse.Namespace) -> int:
    from repro.attacks.toctou import FileObserverHijacker

    seed = _seed_of(args)
    recorder, metrics = _obs_of(args)
    for defenses in ((), ("fuse-dac",)):
        scenario = Scenario.build(
            installer=installer_by_name("amazon"),
            attacker_factory=lambda s: FileObserverHijacker(
                fingerprint_for(installer_by_name("amazon"))
            ),
            defenses=defenses,
            seed=seed,
            recorder=recorder,
            metrics=metrics,
        )
        scenario.publish_app("com.bank.app", label="MyBank")
        outcome = scenario.run_install("com.bank.app")
        label = "defended" if defenses else "undefended"
        print(f"[{label}] hijacked={outcome.hijacked} "
              f"signer={outcome.installed_certificate_owner}")
    _emit_obs(args,
              recorder.records() if recorder is not None else None,
              metrics.snapshot() if metrics is not None else None)
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    installer_cls = installer_by_name(args.installer)
    attacker_cls = ATTACKS[args.attack]
    factory = None
    if attacker_cls is not None:
        factory = lambda s: attacker_cls(fingerprint_for(installer_cls))
    recorder, metrics = _obs_of(args)
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=factory,
        defenses=tuple(args.defense),
        seed=_seed_of(args),
        recorder=recorder,
        metrics=metrics,
    )
    scenario.publish_app(args.package, label="Target App")
    outcome = scenario.run_install(args.package)
    print(outcome.trace.describe())
    print(f"installed : {outcome.installed}")
    print(f"hijacked  : {outcome.hijacked}")
    if outcome.error:
        print(f"error     : {outcome.error}")
    for report in scenario.defense_reports():
        for alarm in report.alarms:
            print(f"[{report.defense_name}] ALARM: {alarm}")
        for blocked in report.blocked_operations:
            print(f"[{report.defense_name}] BLOCKED: {blocked}")
    _emit_obs(args,
              recorder.records() if recorder is not None else None,
              metrics.snapshot() if metrics is not None else None)
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.factory_images import generate_fleet
    from repro.measurement.report import (
        render_installer_breakdown,
        render_table4,
        render_table5,
        render_table6,
    )
    from repro.measurement.tables import (
        compute_table2,
        compute_table3,
        compute_table4,
        compute_table5,
        compute_table6,
    )

    print(render_installer_breakdown("Table II (Google Play apps)",
                                     compute_table2()))
    print()
    print(render_installer_breakdown("Table III (pre-installed apps)",
                                     compute_table3()))
    print()
    print(render_table4(compute_table4()))
    print()
    # The corpus ships with its own calibrated default seed; --seed
    # overrides it for sensitivity runs.
    fleet = (generate_fleet() if args.seed is None
             else generate_fleet(seed=args.seed))
    print(render_table5(compute_table5(fleet)))
    print()
    print(render_table6(compute_table6(fleet)))
    # The tables are computed from static corpora, not simulator runs,
    # so there is nothing to trace; honour the flags with valid empty
    # output rather than surprising the caller.
    _emit_obs(args, None, None)
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.toolkit.auditor import audit_profile
    from repro.toolkit.secure_installer import ToolkitInstaller

    targets = dict(all_installer_types())
    targets["toolkit"] = ToolkitInstaller
    for name in sorted(targets):
        findings = audit_profile(targets[name].profile)
        print(f"{name} ({targets[name].profile.package})")
        if not findings:
            print("  clean")
        for finding in findings:
            print(f"  {finding}")
            print(f"      {finding.detail}")
        print()
    # Static audit, no simulator: valid empty observability output.
    _emit_obs(args, None, None)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.engine import (
        CampaignSpec,
        ConsoleProgress,
        MetricsProgress,
        NullProgress,
        TeeProgress,
        run_fleet,
    )
    from repro.obs import render_metrics, write_trace_jsonl

    observe = bool(args.trace or args.metrics)
    spec = CampaignSpec(
        installs=args.installs,
        installer=args.installer,
        attack=args.attack,
        defenses=tuple(args.defense),
        device=args.device,
        seed=_seed_of(args),
        chaos=args.chaos,
        observe=observe,
        keep_outcomes=args.keep_outcomes,
    )
    progress = NullProgress() if args.quiet else ConsoleProgress()
    engine_metrics = None
    if args.metrics:
        engine_metrics = MetricsProgress()
        progress = TeeProgress(progress, engine_metrics)
    report = run_fleet(
        spec,
        shards=args.shards,
        workers=args.workers,
        backend=args.backend,
        shard_timeout=args.shard_timeout,
        max_retries=args.retries,
        progress=progress,
    )
    print(report.render())
    if args.trace:
        count = write_trace_jsonl(args.trace, report.trace_records())
        print(f"trace: {count} record(s) -> {args.trace}", file=sys.stderr)
    if args.metrics:
        print(render_metrics(report.metrics, title="fleet metrics"))
        print(engine_metrics.render())
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import Fuzzer, default_corpus_dir
    from repro.obs import NULL_RECORDER

    recorder, metrics = _obs_of(args)
    corpus_dir = None if args.no_corpus else (
        args.corpus or default_corpus_dir())
    fuzzer = Fuzzer(
        fuzz_seed=_seed_of(args),
        oracles=tuple(args.oracle),
        backend=args.backend,
        workers=args.workers,
        force_shards=args.shards,
        sabotage_defense=args.break_defense,
        corpus_dir=corpus_dir,
        recorder=recorder if recorder is not None else NULL_RECORDER,
        metrics=metrics,
    )
    report = fuzzer.run(args.budget)
    print(report.render())
    _emit_obs(args,
              recorder.records() if recorder is not None else None,
              metrics.snapshot() if metrics is not None else None)
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        critical_path,
        diff_traces,
        iter_trace_jsonl,
        load_trace_jsonl,
        profile_trace,
        render_critical_path,
        render_diff,
        render_profile,
        render_windows,
        window_forensics,
    )

    if args.trace_command == "summary":
        # Streams: per-name aggregates only, never the whole trace.
        print(render_profile(profile_trace(iter_trace_jsonl(args.trace))))
    elif args.trace_command == "critpath":
        path = critical_path(load_trace_jsonl(args.trace), shard=args.shard)
        print(render_critical_path(path))
    elif args.trace_command == "windows":
        print(render_windows(window_forensics(iter_trace_jsonl(args.trace))))
    elif args.trace_command == "diff":
        diff = diff_traces(load_trace_jsonl(args.trace),
                           load_trace_jsonl(args.against))
        print(render_diff(diff, max_detail=args.max_detail))
        return 0 if diff.empty else 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ghost Installer (DSN 2017) reproduction toolkit",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=None,
                        help="RNG seed for reproducible runs")
    common.add_argument("--trace", metavar="PATH", default=None,
                        help="export a simulated-time trace as JSONL")
    common.add_argument("--metrics", action="store_true",
                        help="collect and print deterministic metrics")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quickstart hijack + defense",
                   parents=[common])

    attack = sub.add_parser("attack", help="run one attack scenario",
                            parents=[common])
    attack.add_argument("--installer", default="amazon",
                        choices=sorted(all_installer_types()))
    attack.add_argument("--attack", default="fileobserver",
                        choices=sorted(ATTACKS))
    attack.add_argument("--defense", action="append", default=[],
                        choices=["dapp", "fuse-dac", "intent-detection",
                                 "intent-origin"])
    attack.add_argument("--package", default="com.victim.app")

    sub.add_parser("tables", help="regenerate Tables II-VI",
                   parents=[common])
    sub.add_parser("audit", help="audit installer designs",
                   parents=[common])

    fleet = sub.add_parser(
        "fleet", parents=[common],
        help="run a sharded campaign across a worker pool")
    fleet.add_argument("--installs", type=int, default=1000,
                       help="total installs in the campaign")
    fleet.add_argument("--installer", default="amazon",
                       choices=sorted(all_installer_types()))
    fleet.add_argument("--attack", default="none", choices=sorted(ATTACKS))
    fleet.add_argument("--defense", action="append", default=[],
                       choices=["dapp", "fuse-dac", "intent-detection",
                                "intent-origin"])
    fleet.add_argument("--device", default="nexus5",
                       choices=sorted(DEVICES))
    fleet.add_argument("--shards", type=int, default=None,
                       help="shard count (default: one per worker)")
    fleet.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: cores, max 4)")
    fleet.add_argument("--backend", default="auto",
                       choices=["auto", "process", "serial"])
    fleet.add_argument("--shard-timeout", type=float, default=None,
                       help="per-shard timeout in seconds")
    fleet.add_argument("--retries", type=int, default=2,
                       help="pool retries per shard before serial fallback")
    fleet.add_argument("--chaos", default=None, metavar="MODE:I,J",
                       help="failure injection for pool workers "
                            "(crash:|hang:|error: + shard indices)")
    fleet.add_argument("--keep-outcomes", type=int, default=None,
                       metavar="N",
                       help="retain at most N per-run outcome records "
                            "per shard (default: all; counters always "
                            "cover every run)")
    fleet.add_argument("--quiet", action="store_true",
                       help="suppress progress lines")

    from repro.fuzz.oracles import oracle_names

    fuzz = sub.add_parser(
        "fuzz", parents=[common],
        help="seeded scenario fuzzing under invariant oracles")
    fuzz.add_argument("--budget", type=int, default=200,
                      help="number of generated cases to run")
    fuzz.add_argument("--oracle", action="append", default=[],
                      choices=list(oracle_names()),
                      help="oracle(s) to check (default: all)")
    fuzz.add_argument("--shards", type=int, default=None,
                      help="engine-backed mode: force every case onto "
                           "this shard count (case chaos is dropped)")
    fuzz.add_argument("--workers", type=int, default=None,
                      help="worker processes for non-serial backends")
    fuzz.add_argument("--backend", default="serial",
                      choices=["auto", "process", "serial"],
                      help="fleet backend for case execution")
    fuzz.add_argument("--corpus", metavar="DIR", default=None,
                      help="regression corpus directory "
                           "(default: tests/fuzz/corpus)")
    fuzz.add_argument("--no-corpus", action="store_true",
                      help="do not write shrunk failures to the corpus")
    fuzz.add_argument("--break-defense", default=None, metavar="NAME",
                      choices=["dapp", "fuse-dac", "intent-detection",
                               "intent-origin"],
                      help="test-only: suppress one defense's reactions "
                           "to prove the oracles notice")

    trace = sub.add_parser(
        "trace", help="forensics over a recorded JSONL trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_common = argparse.ArgumentParser(add_help=False)
    trace_common.add_argument("--trace", metavar="PATH", required=True,
                              help="JSONL trace file to analyze")
    trace_sub.add_parser(
        "summary", parents=[trace_common],
        help="per-name/per-layer latency profile with percentiles")
    critpath = trace_sub.add_parser(
        "critpath", parents=[trace_common],
        help="critical path of the longest recorded span tree")
    critpath.add_argument("--shard", type=int, default=None,
                          help="restrict to one shard of a fleet trace")
    trace_sub.add_parser(
        "windows", parents=[trace_common],
        help="armed->strike window widths split by hijack outcome")
    diff = trace_sub.add_parser(
        "diff", parents=[trace_common],
        help="structural diff of two traces (exit 1 when they differ)")
    diff.add_argument("--against", metavar="PATH", required=True,
                      help="second JSONL trace to compare against")
    diff.add_argument("--max-detail", type=int, default=20,
                      help="changed/added records to list per section")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "demo":
            return _run_demo_inline(args)
        if args.command == "attack":
            return _cmd_attack(args)
        if args.command == "tables":
            return _cmd_tables(args)
        if args.command == "audit":
            return _cmd_audit(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe reader (head, less, ...) closed early.
        # Detach stdout so interpreter shutdown does not retry the
        # flush and print a traceback; 141 mirrors SIGPIPE death.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
