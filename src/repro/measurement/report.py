"""ASCII rendering of measurement tables, paper-vs-measured style."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.measurement.tables import (
    InstallerBreakdown,
    Table4,
    Table5,
    Table6,
)


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))
    separator = "-+-".join("-" * width for width in widths)
    out = [title, line(list(headers)), separator]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def pct(value: float) -> str:
    """Format a fraction as the paper prints percentages."""
    return f"{value * 100:.1f}%"


def render_installer_breakdown(title: str,
                               table: InstallerBreakdown) -> str:
    """Render a Table II/III-shaped breakdown."""
    rows: List[Tuple[str, str, str]] = [
        (
            "Excluding Unknown Apps",
            f"{table.vulnerable}/{table.known} "
            f"({pct(table.vulnerable_share_excluding_unknown)})",
            f"{table.secure}/{table.known} "
            f"({pct(table.secure_share_excluding_unknown)})",
        ),
        (
            "Including Unknown Apps",
            f"{table.vulnerable}/{table.installers} "
            f"({pct(table.vulnerable_share_including_unknown)})",
            f"{table.secure}/{table.installers} "
            f"({pct(table.secure_share_including_unknown)})",
        ),
    ]
    body = render_table(
        title,
        ["Type", "SD-Card (potentially vulnerable)",
         "Internal Storage (potentially secure)"],
        rows,
    )
    footer = (
        f"\ncorpus={table.corpus_size}, installers={table.installers}, "
        f"WRITE_EXTERNAL_STORAGE={table.write_external}"
    )
    return body + footer


def render_table4(table: Table4) -> str:
    """Render Table IV."""
    headers = ["# hardcoded url or scheme", "1", "<=2", "<=4", "<=8"]
    row = ["# apps"]
    for limit in (1, 2, 4, 8):
        count, fraction = table.buckets[limit]
        row.append(f"{pct(fraction)} ({count}/{table.corpus_size})")
    body = render_table("Table IV: number of fixed url or redirection scheme",
                        headers, [row])
    return body + (
        f"\nredirecting apps overall: {table.redirecting}/{table.corpus_size} "
        f"({pct(table.redirecting_fraction)})"
    )


def render_table5(table: Table5) -> str:
    """Render Table V."""
    rows = [
        (
            row.installer_package,
            row.image_count,
            row.models,
            ", ".join(row.carriers[:6]) + ("..." if len(row.carriers) > 6 else ""),
            ", ".join(row.vendors),
        )
        for row in table.rows
    ]
    return render_table(
        "Table V: impact of vulnerable pre-installed installers",
        ["Vulnerable app", "Images", "Models", "Carriers", "Vendors"],
        rows,
    )


def render_table6(table: Table6) -> str:
    """Render Table VI."""
    rows = [
        (
            row.vendor,
            f"{row.avg_install_packages:.1f}/{row.avg_system_apps:.1f}",
            pct(row.ratio),
        )
        for row in table.rows
    ]
    body = render_table(
        "Table VI: system apps with INSTALL_PACKAGES",
        ["Vendor", "avg INSTALL_PACKAGES / avg system apps", "ratio"],
        rows,
    )
    low, high = table.flagship_range
    return body + (
        f"\ndoubled over 3 years: {table.doubled_over_period}; "
        f"flagship privileged apps: {low}-{high}"
    )
