"""Compute the paper's measurement tables from corpora and fleets.

Each ``compute_table*`` function runs the *analysis* (classifier, code
scan, fleet joins) over generated inputs and returns a small dataclass
with exactly the numbers the paper's table reports, so benchmarks can
print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.classifier import Category, InstallerClassifier
from repro.analysis.corpus import (
    CorpusApp,
    WRITE_EXTERNAL,
    generate_play_corpus,
    generate_preinstalled_corpus,
)
from repro.analysis.factory_images import (
    ALL_SPECS,
    AMAZON_PKG,
    DTIGNITE_PKG,
    Fleet,
    HUAWEI_STORE_PKG,
    SPRINTZONE_PKG,
    XIAOMI_STORE_PKG,
)
from repro.analysis.redirect_scan import RedirectStudy, scan_corpus


# ---------------------------------------------------------------------------
# Tables II and III — potentially vulnerable installers
# ---------------------------------------------------------------------------


@dataclass
class InstallerBreakdown:
    """Shared shape of Tables II and III."""

    corpus_size: int
    installers: int
    vulnerable: int
    secure: int
    unknown: int
    write_external: int

    @property
    def known(self) -> int:
        """Installers with a resolved verdict (the 'excluding unknown' row)."""
        return self.vulnerable + self.secure

    @property
    def vulnerable_share_excluding_unknown(self) -> float:
        """e.g. 779/931 = 83.7% for the Play corpus."""
        return self.vulnerable / self.known if self.known else 0.0

    @property
    def secure_share_excluding_unknown(self) -> float:
        """e.g. 152/931 = 16.3%."""
        return self.secure / self.known if self.known else 0.0

    @property
    def vulnerable_share_including_unknown(self) -> float:
        """e.g. 779/1493 = 52.2%."""
        return self.vulnerable / self.installers if self.installers else 0.0

    @property
    def secure_share_including_unknown(self) -> float:
        """e.g. 152/1493 = 10.2%."""
        return self.secure / self.installers if self.installers else 0.0


@dataclass
class Table2(InstallerBreakdown):
    """Table II: potentially vulnerable Google Play apps."""


@dataclass
class Table3(InstallerBreakdown):
    """Table III: potentially vulnerable pre-installed apps."""

    total_instances: int = 0
    write_external_instances: int = 0


def compute_table2(apps: Optional[Sequence[CorpusApp]] = None,
                   seed: int = 2016) -> Table2:
    """Classify the Play corpus and fill Table II."""
    apps = list(apps) if apps is not None else generate_play_corpus(seed)
    results = InstallerClassifier().classify_corpus(apps)
    return Table2(
        corpus_size=len(apps),
        installers=results.installers,
        vulnerable=results.count(Category.POTENTIALLY_VULNERABLE),
        secure=results.count(Category.POTENTIALLY_SECURE),
        unknown=results.count(Category.UNKNOWN),
        write_external=sum(1 for app in apps if app.has_permission(WRITE_EXTERNAL)),
    )


def compute_table3(apps: Optional[Sequence[CorpusApp]] = None,
                   seed: int = 2016) -> Table3:
    """Classify the pre-installed corpus and fill Table III."""
    apps = list(apps) if apps is not None else generate_preinstalled_corpus(seed)
    results = InstallerClassifier().classify_corpus(apps)
    return Table3(
        corpus_size=len(apps),
        installers=results.installers,
        vulnerable=results.count(Category.POTENTIALLY_VULNERABLE),
        secure=results.count(Category.POTENTIALLY_SECURE),
        unknown=results.count(Category.UNKNOWN),
        write_external=sum(1 for app in apps if app.has_permission(WRITE_EXTERNAL)),
        total_instances=sum(app.instances for app in apps),
        write_external_instances=sum(
            app.instances for app in apps if app.has_permission(WRITE_EXTERNAL)
        ),
    )


# ---------------------------------------------------------------------------
# Table IV — hardcoded redirect URLs
# ---------------------------------------------------------------------------


@dataclass
class Table4:
    """Table IV: number of fixed URL or redirection schemes."""

    corpus_size: int
    buckets: Dict[int, Tuple[int, float]]   # limit -> (count, fraction)
    redirecting: int
    redirecting_fraction: float


def compute_table4(apps: Optional[Sequence[CorpusApp]] = None,
                   seed: int = 2016) -> Table4:
    """Scan the Play corpus code for Table IV."""
    apps = list(apps) if apps is not None else generate_play_corpus(seed)
    study: RedirectStudy = scan_corpus(apps)
    return Table4(
        corpus_size=len(apps),
        buckets=study.table_iv_row(),
        redirecting=study.apps_with_any(),
        redirecting_fraction=study.apps_with_any() / len(apps),
    )


# ---------------------------------------------------------------------------
# Table V — impact of vulnerable pre-installed installers
# ---------------------------------------------------------------------------


@dataclass
class ImpactRow:
    """One row of Table V."""

    installer_package: str
    image_count: int
    carriers: Tuple[str, ...]
    vendors: Tuple[str, ...]
    models: int


@dataclass
class Table5:
    """Table V: devices/carriers/vendors affected per installer."""

    rows: List[ImpactRow] = field(default_factory=list)

    def row_for(self, package: str) -> Optional[ImpactRow]:
        """Row of one installer, if present."""
        for row in self.rows:
            if row.installer_package == package:
                return row
        return None


TABLE5_INSTALLERS = (
    AMAZON_PKG, DTIGNITE_PKG, XIAOMI_STORE_PKG, HUAWEI_STORE_PKG, SPRINTZONE_PKG,
)


def compute_table5(fleet: Fleet) -> Table5:
    """Join the fleet against the named vulnerable installers."""
    table = Table5()
    for package in TABLE5_INSTALLERS:
        images = fleet.images_with_package(package)
        table.rows.append(
            ImpactRow(
                installer_package=package,
                image_count=len(images),
                carriers=tuple(sorted({image.carrier for image in images})),
                vendors=tuple(sorted({image.vendor for image in images})),
                models=len({image.model for image in images}),
            )
        )
    return table


# ---------------------------------------------------------------------------
# Table VI — INSTALL_PACKAGES prevalence
# ---------------------------------------------------------------------------


@dataclass
class VendorPrivilegeRow:
    """One vendor's column of Table VI."""

    vendor: str
    avg_system_apps: float
    avg_install_packages: float

    @property
    def ratio(self) -> float:
        """Share of system apps holding INSTALL_PACKAGES."""
        return (
            self.avg_install_packages / self.avg_system_apps
            if self.avg_system_apps else 0.0
        )


@dataclass
class Table6:
    """Table VI: system apps with INSTALL_PACKAGES per vendor."""

    rows: List[VendorPrivilegeRow] = field(default_factory=list)
    doubled_over_period: bool = False
    flagship_range: Tuple[int, int] = (0, 0)

    def row_for(self, vendor: str) -> Optional[VendorPrivilegeRow]:
        """Row of one vendor."""
        for row in self.rows:
            if row.vendor == vendor:
                return row
        return None


def compute_table6(fleet: Fleet) -> Table6:
    """Aggregate INSTALL_PACKAGES prevalence per vendor."""
    table = Table6()
    for spec in ALL_SPECS:
        images = fleet.by_vendor(spec.vendor)
        table.rows.append(
            VendorPrivilegeRow(
                vendor=spec.vendor,
                avg_system_apps=sum(len(image.apps) for image in images) / len(images),
                avg_install_packages=(
                    sum(len(image.install_packages_apps()) for image in images)
                    / len(images)
                ),
            )
        )
    # The "doubled in three years" finding: oldest vs newest quartile.
    oldest = _avg_ip(fleet, year_index=0)
    newest = _avg_ip(fleet, year_index=3)
    table.doubled_over_period = newest >= 1.9 * oldest
    flagship_counts = [
        len(image.install_packages_apps())
        for image in fleet.images if image.flagship
    ]
    if flagship_counts:
        table.flagship_range = (min(flagship_counts), max(flagship_counts))
    return table


def _avg_ip(fleet: Fleet, year_index: int) -> float:
    images = [image for image in fleet.images if image.year_index == year_index]
    if not images:
        return 0.0
    return sum(len(image.install_packages_apps()) for image in images) / len(images)
