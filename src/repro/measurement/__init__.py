"""Table computation and rendering for the Section IV measurement study."""

from repro.measurement.tables import (
    Table2,
    Table3,
    Table4,
    Table5,
    Table6,
    compute_table2,
    compute_table3,
    compute_table4,
    compute_table5,
    compute_table6,
)
from repro.measurement.report import render_table

__all__ = [
    "Table2", "Table3", "Table4", "Table5", "Table6",
    "compute_table2", "compute_table3", "compute_table4",
    "compute_table5", "compute_table6", "render_table",
]
