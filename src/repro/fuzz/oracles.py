"""Invariant oracles: what must hold for *every* generated workload.

Each oracle inspects one :class:`FuzzRun` — a case plus the fleet
reports of two independent executions — and returns the invariant
violations it found.  The oracles encode the paper's claims as machine-
checkable properties:

- **determinism** — same seed, same everything: the two executions
  must agree byte-for-byte on traces (via
  :func:`repro.obs.analyze.diff_traces`) and bit-for-bit on stats and
  metric snapshots, for any shard/worker/backend combination.
- **soundness** — a benign schedule (no attack, or an attacker never
  armed) must produce zero alarms, zero blocked operations, zero
  hijacks and zero errors: defenses must not cry wolf (Section VI-A).
- **completeness** — an armed attack that strikes inside the race
  window must be caught by the enabled defense: FUSE-DAC blocks every
  strike (no hijack lands), DAPP alarms on every hijack (Table VII).
  On a lossy-watcher device plain DAPP is *expected* to go blind
  (that is the ``watcher-flood`` result), so the oracle exempts it
  there unless the run is marked ``strict_lossy`` — the knob the CI
  leg uses to prove the attack actually defeats plain DAPP.  The
  hybrid ``dapp-rescan`` defense is held to full completeness under
  loss: its overflow-triggered rescans must restore detection.
- **conservation** — merged :class:`CampaignStats` totals equal the
  trial count under *any* merge order, and the per-run accounting
  identities hold (installed = hijacked + clean, etc.).
- **well-formed** — per shard, the trace is structurally sane: spans
  close after they open, event timestamps are monotone in emission
  order, and same-layer spans nest rather than partially overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Tuple

from repro.core.campaign import CampaignStats
from repro.engine.merge import FleetReport, merge_stats
from repro.fuzz.gen import FuzzCase
from repro.obs.analyze import diff_traces, validate_records
from repro.obs.export import trace_to_jsonl
from repro.obs.trace import EVENT
from repro.sim.rand import DeterministicRandom

#: Defenses that catch the Step-3 file-swap attacks (Table VII); the
#: Intent schemes address a different threat and are exempt from the
#: completeness oracle.
BLOCKING_DEFENSES = ("fuse-dac",)
DETECTING_DEFENSES = ("dapp", "dapp-rescan")

#: Detecting defenses that keep their completeness guarantee on a
#: lossy-watcher device.  Plain "dapp" is deliberately absent: a
#: bounded queue is exactly the blind spot ``watcher-flood`` exploits.
LOSS_TOLERANT_DEFENSES = ("dapp-rescan",)


@dataclass(frozen=True)
class Violation:
    """One oracle failure: which invariant broke and how."""

    oracle: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


@dataclass
class FuzzRun:
    """One executed case: the evidence the oracles inspect.

    ``report`` and ``replay`` are two independent executions of the
    same lowered spec (the determinism oracle compares them; every
    other oracle reads ``report`` only).
    """

    case: FuzzCase
    report: FleetReport
    replay: FleetReport
    #: The runner's broken-defense knob, so oracles can annotate.
    sabotage_defense: str = ""
    #: Hold plain "dapp" to full completeness even on a lossy device.
    #: Off by default (loss-blindness is the expected model behavior);
    #: the CI lossy-watcher leg turns it on to prove the flood wins.
    strict_lossy: bool = False


Oracle = Callable[[FuzzRun], List[Violation]]


def _stats_tuple(stats: CampaignStats) -> Tuple[int, ...]:
    # The conserved fields are whatever CampaignStats says they are —
    # the oracle must not drift from the model's own counter list.
    return stats.counter_tuple()


def _strike_events(report: FleetReport) -> List[Dict[str, Any]]:
    return [record for record in report.trace_records()
            if record.get("type") == EVENT
            and record.get("name") == "attack/strike"]


# -- determinism ---------------------------------------------------------------

def check_determinism(run: FuzzRun) -> List[Violation]:
    """Same seed -> byte-identical trace, bit-identical stats/metrics."""
    violations = []
    first = trace_to_jsonl(run.report.trace_records())
    second = trace_to_jsonl(run.replay.trace_records())
    if first != second:
        diff = diff_traces(run.report.trace_records(),
                           run.replay.trace_records())
        violations.append(Violation(
            "determinism",
            f"replay trace diverged: {len(diff.changed)} changed, "
            f"{len(diff.removed)} only in run 1, "
            f"{len(diff.added)} only in run 2"))
    if _stats_tuple(run.report.stats) != _stats_tuple(run.replay.stats):
        violations.append(Violation(
            "determinism",
            f"replay stats diverged: {_stats_tuple(run.report.stats)} != "
            f"{_stats_tuple(run.replay.stats)}"))
    if run.report.metrics != run.replay.metrics:
        violations.append(Violation(
            "determinism", "replay metrics snapshot diverged"))
    return violations


# -- defense soundness ---------------------------------------------------------

def check_soundness(run: FuzzRun) -> List[Violation]:
    """A benign schedule must trigger nothing (Section VI-A)."""
    case, stats = run.case, run.report.stats
    benign = case.attack == "none" or not case.arm_attacker
    if not benign:
        return []
    violations = []
    if stats.alarms or stats.blocked:
        violations.append(Violation(
            "soundness",
            f"benign schedule raised {stats.alarms} alarm(s) and "
            f"{stats.blocked} block(s) — defenses must not cry wolf"))
    if stats.hijacks:
        violations.append(Violation(
            "soundness",
            f"benign schedule reported {stats.hijacks} hijack(s) with no "
            "armed attacker"))
    if stats.errors:
        violations.append(Violation(
            "soundness", f"benign schedule hit {stats.errors} error(s)"))
    if stats.installs_completed != stats.runs:
        violations.append(Violation(
            "soundness",
            f"only {stats.installs_completed} of {stats.runs} benign "
            "install(s) completed"))
    return violations


# -- defense completeness ------------------------------------------------------

def check_completeness(run: FuzzRun) -> List[Violation]:
    """An in-window strike must be caught by the enabled defense."""
    case, stats = run.case, run.report.stats
    if case.attack == "none" or not case.arm_attacker:
        return []
    violations = []
    strikes = _strike_events(run.report)
    blocking = [d for d in case.defenses if d in BLOCKING_DEFENSES]
    detecting = [d for d in case.defenses if d in DETECTING_DEFENSES]
    if blocking:
        if stats.hijacks:
            violations.append(Violation(
                "completeness",
                f"{stats.hijacks} hijack(s) landed with "
                f"{'+'.join(blocking)} enabled — a blocking defense "
                "must close the race window"))
        unblocked = [e for e in strikes
                     if not (e.get("attrs") or {}).get("blocked")]
        if unblocked:
            violations.append(Violation(
                "completeness",
                f"{len(unblocked)} of {len(strikes)} strike(s) went "
                f"unblocked with {'+'.join(blocking)} enabled"))
    elif detecting:
        # On a lossy-watcher device a purely notify-driven detector can
        # be blinded by design (watcher-flood): exempt it unless the run
        # demands strict accounting.  Loss-tolerant defenses (rescan
        # hybrids) are never exempt — surviving the flood is their job.
        enforced = detecting
        if case.lossy_watchers and not run.strict_lossy:
            enforced = [d for d in detecting if d in LOSS_TOLERANT_DEFENSES]
        if enforced and stats.alarmed_runs < stats.hijacks:
            violations.append(Violation(
                "completeness",
                f"{stats.hijacks} hijack(s) but only {stats.alarmed_runs} "
                f"alarmed run(s) with {'+'.join(enforced)} enabled — "
                "every in-window replacement must be detected"))
    return violations


# -- outcome conservation ------------------------------------------------------

def check_conservation(run: FuzzRun) -> List[Violation]:
    """Totals equal trial count under any merge order."""
    case, report = run.case, run.report
    violations = []
    if report.stats.runs != case.trials:
        violations.append(Violation(
            "conservation",
            f"stats cover {report.stats.runs} run(s), case asked for "
            f"{case.trials} trial(s)"))
    installed = report.stats.installs_completed
    if report.stats.hijacks + report.stats.clean_installs != installed:
        violations.append(Violation(
            "conservation",
            f"hijacked ({report.stats.hijacks}) + clean "
            f"({report.stats.clean_installs}) != installed ({installed})"))
    for name in ("alarmed_runs", "blocked_runs"):
        if getattr(report.stats, name) > report.stats.runs:
            violations.append(Violation(
                "conservation",
                f"{name} ({getattr(report.stats, name)}) exceeds total "
                f"runs ({report.stats.runs})"))
    # Fold the per-shard stats under several seed-derived merge orders:
    # every permutation must reproduce the merged totals.
    parts = [shard.stats for shard in report.shards]
    reference = _stats_tuple(report.stats)
    orders = _merge_orders(case.seed, len(parts))
    for order in orders:
        merged = merge_stats(parts[i] for i in order)
        if _stats_tuple(merged) != reference:
            violations.append(Violation(
                "conservation",
                f"merge order {list(order)} changed the totals: "
                f"{_stats_tuple(merged)} != {reference}"))
    return violations


def _merge_orders(seed: int, count: int) -> List[Tuple[int, ...]]:
    """Identity, reversal, and a few seeded shuffles of ``range(count)``."""
    if count == 0:
        return []
    orders = [tuple(range(count)), tuple(reversed(range(count)))]
    rng = DeterministicRandom(seed).fork("merge-orders")
    for _ in range(3):
        order = list(range(count))
        rng.shuffle(order)
        orders.append(tuple(order))
    return orders


# -- trace well-formedness -----------------------------------------------------

def check_well_formed(run: FuzzRun) -> List[Violation]:
    """Spans nest, event timestamps are monotone per shard.

    The structural rules live with the trace tooling
    (:func:`repro.obs.analyze.validate_records`) so they apply to any
    exported trace, not just fuzz runs; this oracle wraps each problem
    it reports as a :class:`Violation`.
    """
    return [Violation("well-formed", message)
            for message in validate_records(run.report.trace_records())]


#: Oracle registry, in check order.  Keys are the CLI ``--oracle`` names.
ORACLES: Dict[str, Oracle] = {
    "determinism": check_determinism,
    "soundness": check_soundness,
    "completeness": check_completeness,
    "conservation": check_conservation,
    "well-formed": check_well_formed,
}


def oracle_names() -> Tuple[str, ...]:
    """All registered oracle names, in check order."""
    return tuple(ORACLES)


def check_run(run: FuzzRun,
              oracles: Iterable[str] = ()) -> List[Violation]:
    """Run the named oracles (default: all) over one executed case."""
    names = tuple(oracles) or oracle_names()
    violations: List[Violation] = []
    for name in names:
        violations.extend(ORACLES[name](run))
    return violations
