"""The shrinking regression corpus: failures that must never come back.

Every minimized failing case the fuzzer finds is written to
``tests/fuzz/corpus/`` as a small replayable JSON file.  Two kinds of
entry live there:

- ``expect: "pass"`` — a case that must replay clean: one that *used
  to* violate an oracle (a real bug, since fixed) or a minimized
  boundary workload worth pinning.  Replay re-executes it and requires
  every oracle to stay green: the regression pin.
- ``expect: "fail"`` — a case run with a deliberately broken defense
  (the ``sabotage`` knob).  Replay requires the named oracle to still
  fire: it pins the *oracle's* power, proving the fuzzer would notice
  if a defense silently stopped working.

The pytest replayer (``tests/fuzz/test_corpus_replay.py``) walks the
directory and runs :func:`replay_entry` on each file as part of tier-1.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.fuzz.gen import FuzzCase
from repro.fuzz.oracles import ORACLES, Violation

#: Bump when the entry schema changes; replay rejects unknown versions.
CORPUS_VERSION = 1

_EXPECTATIONS = ("pass", "fail")


def default_corpus_dir() -> Path:
    """The in-repo corpus: ``tests/fuzz/corpus`` beside ``src/``."""
    return Path(__file__).resolve().parents[3] / "tests" / "fuzz" / "corpus"


def corpus_file_name(oracle: str, case: FuzzCase) -> str:
    """Stable file name: oracle plus the case's content hash."""
    return f"{oracle}-{case.case_id()}.json"


def corpus_entry(oracle: str, case: FuzzCase, note: str = "",
                 expect: str = "pass",
                 sabotage: Optional[str] = None,
                 strict_lossy: bool = False,
                 violation: str = "") -> Dict[str, Any]:
    """Build one corpus entry (a JSON-ready dict).

    ``strict_lossy`` is recorded so replay judges the case under the
    same completeness regime it was found under (see
    :class:`~repro.fuzz.oracles.FuzzRun`).
    """
    if oracle not in ORACLES:
        raise ReproError(f"unknown oracle {oracle!r}; valid: {tuple(ORACLES)}")
    if expect not in _EXPECTATIONS:
        raise ReproError(
            f"expect must be one of {_EXPECTATIONS}, got {expect!r}")
    return {
        "version": CORPUS_VERSION,
        "oracle": oracle,
        "expect": expect,
        "sabotage": sabotage,
        "strict_lossy": strict_lossy,
        "note": note,
        "violation": violation,
        "case": json.loads(case.to_json()),
    }


def write_corpus_case(directory: Path, oracle: str, case: FuzzCase,
                      note: str = "", expect: str = "pass",
                      sabotage: Optional[str] = None,
                      strict_lossy: bool = False,
                      violation: str = "") -> Path:
    """Write one entry; returns the path.  Idempotent per (oracle, case)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entry = corpus_entry(oracle, case, note=note, expect=expect,
                         sabotage=sabotage, strict_lossy=strict_lossy,
                         violation=violation)
    path = directory / corpus_file_name(oracle, case)
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_corpus(directory: Path) -> List[Tuple[Path, Dict[str, Any]]]:
    """All entries under ``directory``, sorted by file name.

    Raises :class:`~repro.errors.ReproError` on a malformed entry —
    a corrupt corpus file is itself a regression.
    """
    directory = Path(directory)
    entries = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.json")):
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ReproError(f"corpus file {path.name} is not JSON: {exc}")
        _check_entry(path.name, entry)
        entries.append((path, entry))
    return entries


def _check_entry(name: str, entry: Any) -> None:
    if not isinstance(entry, dict):
        raise ReproError(f"corpus file {name} is not a JSON object")
    version = entry.get("version")
    if version != CORPUS_VERSION:
        raise ReproError(
            f"corpus file {name} has version {version!r}, "
            f"this library reads {CORPUS_VERSION}")
    oracle = entry.get("oracle")
    if oracle not in ORACLES:
        raise ReproError(
            f"corpus file {name} names unknown oracle {oracle!r}")
    if entry.get("expect") not in _EXPECTATIONS:
        raise ReproError(
            f"corpus file {name} has expect={entry.get('expect')!r}, "
            f"valid: {_EXPECTATIONS}")
    if "case" not in entry:
        raise ReproError(f"corpus file {name} has no case")


def replay_entry(entry: Dict[str, Any],
                 backend: str = "serial") -> Tuple[bool, List[Violation]]:
    """Re-execute one corpus entry and judge it against its expectation.

    Returns ``(ok, violations)``: for an ``expect: "pass"`` entry, ok
    means *no* oracle fired; for ``expect: "fail"``, ok means the
    entry's named oracle *did* fire (others are ignored — a sabotaged
    defense may trip several).
    """
    from repro.fuzz.runner import execute_case  # runner imports us back

    case = FuzzCase.from_json(json.dumps(entry["case"]))
    run = execute_case(case, sabotage_defense=entry.get("sabotage"),
                       backend=backend,
                       strict_lossy=bool(entry.get("strict_lossy", False)))
    if entry["expect"] == "pass":
        violations = _check(run, tuple(ORACLES))
        return (not violations, violations)
    violations = _check(run, (entry["oracle"],))
    return (bool(violations), violations)


def _check(run: Any, oracles: Sequence[str]) -> List[Violation]:
    from repro.fuzz.oracles import check_run

    return check_run(run, oracles)
