"""Seeded workload generation: the fuzzer's case sampler.

A :class:`FuzzCase` is a JSON-serializable description of one
randomized campaign — everything the fuzzer varies, nothing it does
not.  Cases are sampled by :func:`generate_case` from a
:class:`~repro.sim.rand.DeterministicRandom` stream forked per case
index, so case ``k`` of fuzz seed ``S`` is the same on every machine,
and lowered to a :class:`repro.engine.spec.CampaignSpec` for
execution.  Sampling is constrained to *valid* specs by construction
(e.g. a one-shot attacker never gets more than one shard), which the
property suite pins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.android.permissions import (
    INTERNET,
    KILL_BACKGROUND_PROCESSES,
    READ_CONTACTS,
    READ_LOGS,
)
from repro.engine.spec import ATTACKS, DEVICES, CHAOS_MODES, CampaignSpec
from repro.errors import ReproError
from repro.installers import all_installer_types
from repro.sim.clock import millis
from repro.sim.rand import DeterministicRandom

#: Installer names a case may draw (every registered store).
FUZZ_INSTALLERS: Tuple[str, ...] = tuple(sorted(all_installer_types()))

#: Attack names a case may draw, with sampling weights: benign
#: schedules must stay common enough to exercise the soundness oracle.
FUZZ_ATTACKS: Tuple[str, ...] = tuple(sorted(ATTACKS))
_ATTACK_WEIGHTS = {"none": 0.25, "fileobserver": 0.30, "wait-and-see": 0.25,
                   "watcher-flood": 0.20}

#: Device profile names a case may draw.
FUZZ_DEVICES: Tuple[str, ...] = tuple(sorted(DEVICES))

#: Candidate extra ``uses-permission`` entries for published APKs.
PERMISSION_POOL: Tuple[str, ...] = (
    INTERNET,
    READ_CONTACTS,
    READ_LOGS,
    KILL_BACKGROUND_PROCESSES,
)

_DEFENSE_CHANCE = 0.40
_CHAOS_CHANCE = 0.20
_POLL_JITTER_CHANCE = 0.50
_MAX_TRIALS = 6
_MAX_SHARDS = 3
_MIN_SIZE = 512
_MAX_SIZE = 8192
_MIN_POLL_NS = millis(5)
_MAX_POLL_NS = millis(300)

#: Chance a case runs on a device with a bounded (lossy) watch queue,
#: and the depths/drain intervals it may draw.  Depths start at 8 so
#: benign event pressure (a download burst plus DAPP's own grab reads)
#: never overflows on its own — only attacks do, which keeps the
#: soundness oracle meaningful under loss.
_LOSSY_CHANCE = 0.30
_WATCH_DEPTHS = (8, 16, 32, 64, 128)
_WATCH_DRAINS_NS = (millis(2), millis(5))
_COALESCE_CHANCE = 0.25
#: When the dapp slot is drawn, chance it is the hybrid rescan variant.
_RESCAN_VARIANT_CHANCE = 0.50


@dataclass(frozen=True)
class FuzzCase:
    """One sampled workload: the unit the fuzzer executes and shrinks.

    Field order is the canonical JSON order; :meth:`to_json` /
    :meth:`from_json` round-trip bit-identically, and :meth:`case_id`
    is a stable content hash used for corpus file names.
    """

    seed: int
    trials: int
    installer: str = "amazon"
    attack: str = "none"
    defenses: Tuple[str, ...] = ()
    device: str = "nexus5"
    shards: int = 1
    base_size_bytes: int = 4096
    max_extra_permissions: int = 0
    poll_interval_ns: Optional[int] = None
    arm_attacker: bool = True
    rearm_between: bool = True
    chaos: Optional[str] = None
    #: Device watch-queue loss axes (None/False = lossless watchers).
    #: Optional in the JSON form so pre-lossy corpus entries replay.
    watch_queue_depth: Optional[int] = None
    watch_drain_interval_ns: Optional[int] = None
    watch_coalesce: bool = False

    @property
    def lossy_watchers(self) -> bool:
        """True when the device can actually drop watch events."""
        return self.watch_queue_depth is not None

    # -- lowering --------------------------------------------------------------

    def campaign_spec(self, observe: bool = True,
                      sabotage_defense: Optional[str] = None) -> CampaignSpec:
        """Lower to an executable (and validated) engine spec.

        Raises :class:`~repro.errors.ReproError` on an invalid case —
        lowering *is* the case's validation.  ``sabotage_defense`` is
        the runner's test-only broken-defense knob; it rides on the
        spec so it reaches pool workers too.
        """
        if self.trials < 1:
            raise ReproError(f"fuzz case needs trials >= 1, got {self.trials}")
        if self.shards < 1:
            raise ReproError(f"fuzz case needs shards >= 1, got {self.shards}")
        spec = CampaignSpec(
            installs=self.trials,
            installer=self.installer,
            attack=self.attack,
            defenses=self.defenses,
            device=self.device,
            seed=self.seed,
            base_size_bytes=self.base_size_bytes,
            arm_attacker=self.arm_attacker,
            rearm_between=self.rearm_between,
            chaos=self.chaos,
            observe=observe,
            permission_pool=PERMISSION_POOL if self.max_extra_permissions else (),
            max_extra_permissions=self.max_extra_permissions,
            poll_interval_ns=self.poll_interval_ns,
            watch_queue_depth=self.watch_queue_depth,
            watch_drain_interval_ns=self.watch_drain_interval_ns,
            watch_coalesce=self.watch_coalesce,
            sabotage_defense=sabotage_defense,
        )
        spec.shard(self.shards)  # validates chaos indices against the count
        return spec

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ReproError` if the case cannot run."""
        self.campaign_spec(observe=False)

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace, tuples as lists."""
        return json.dumps(asdict(self), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        """Inverse of :meth:`to_json`; rejects unknown fields."""
        data: Dict[str, Any] = json.loads(text)
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"fuzz case JSON has unknown field(s): {sorted(unknown)}")
        # The watcher-loss axes postdate the corpus format; entries
        # written before them mean "lossless", which is the default.
        optional = {"watch_queue_depth", "watch_drain_interval_ns",
                    "watch_coalesce"}
        missing = known - set(data) - optional
        if missing:
            raise ReproError(
                f"fuzz case JSON is missing field(s): {sorted(missing)}")
        data["defenses"] = tuple(data["defenses"])
        return cls(**data)

    def case_id(self) -> str:
        """Stable content hash (12 hex chars) for corpus file names."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:12]

    def describe(self) -> str:
        """One deterministic summary line for fuzz logs."""
        bits = [
            f"installer={self.installer}", f"attack={self.attack}",
            f"defenses={','.join(self.defenses) or '-'}",
            f"device={self.device}", f"trials={self.trials}",
            f"shards={self.shards}", f"seed={self.seed}",
        ]
        if self.chaos:
            bits.append(f"chaos={self.chaos}")
        if self.poll_interval_ns is not None:
            bits.append(f"poll={self.poll_interval_ns}ns")
        if self.watch_queue_depth is not None:
            drain = self.watch_drain_interval_ns
            bits.append(f"watch-depth={self.watch_queue_depth}"
                        + (f"/drain={drain}ns" if drain is not None else ""))
        if self.watch_coalesce:
            bits.append("watch-coalesce")
        if self.max_extra_permissions:
            bits.append(f"perms<={self.max_extra_permissions}")
        if not self.arm_attacker:
            bits.append("unarmed")
        if not self.rearm_between:
            bits.append("one-shot")
        return " ".join(bits)


def generate_case(fuzz_seed: int, index: int) -> FuzzCase:
    """Sample case ``index`` of fuzz seed ``fuzz_seed``.

    Pure: the same ``(fuzz_seed, index)`` yields the same case
    everywhere.  Sampled cases are always valid by construction
    (pinned by the property suite): a one-shot armed attacker forces a
    single shard, chaos indices stay inside the shard range, and
    permission draws stay inside :data:`PERMISSION_POOL`.
    """
    rng = DeterministicRandom(fuzz_seed).fork(f"case-{index}")
    attack = rng.weighted_choice(
        FUZZ_ATTACKS, [_ATTACK_WEIGHTS[name] for name in FUZZ_ATTACKS])
    defenses = []
    if rng.chance(_DEFENSE_CHANCE):  # the dapp slot: plain or hybrid variant
        defenses.append("dapp-rescan"
                        if rng.chance(_RESCAN_VARIANT_CHANCE) else "dapp")
    for name in ("fuse-dac", "intent-detection", "intent-origin"):
        if rng.chance(_DEFENSE_CHANCE):
            defenses.append(name)
    defenses = tuple(defenses)
    arm_attacker = rng.chance(0.85)
    rearm_between = rng.chance(0.80)
    trials = rng.randint(1, _MAX_TRIALS)
    if attack != "none" and not rearm_between:
        shards = 1  # a one-shot attacker refuses to shard
    else:
        shards = rng.randint(1, _MAX_SHARDS)
    chaos = None
    if shards >= 2 and rng.chance(_CHAOS_CHANCE):
        mode = rng.choice(CHAOS_MODES)
        count = rng.randint(1, shards)
        indices = sorted(rng.sample(range(shards), count))
        chaos = f"{mode}:{','.join(str(i) for i in indices)}"
    poll_interval_ns = None
    if attack == "wait-and-see" and rng.chance(_POLL_JITTER_CHANCE):
        poll_interval_ns = rng.randint(_MIN_POLL_NS, _MAX_POLL_NS)
    watch_queue_depth = None
    watch_drain_interval_ns = None
    if rng.chance(_LOSSY_CHANCE):
        watch_queue_depth = rng.choice(_WATCH_DEPTHS)
        watch_drain_interval_ns = rng.choice(_WATCH_DRAINS_NS)
    watch_coalesce = rng.chance(_COALESCE_CHANCE)
    return FuzzCase(
        seed=DeterministicRandom(fuzz_seed).fork(f"case-seed-{index}").seed,
        trials=trials,
        installer=rng.choice(FUZZ_INSTALLERS),
        attack=attack,
        defenses=defenses,
        device=rng.choice(FUZZ_DEVICES),
        shards=shards,
        base_size_bytes=rng.randint(_MIN_SIZE, _MAX_SIZE),
        max_extra_permissions=rng.randint(0, len(PERMISSION_POOL) - 1),
        poll_interval_ns=poll_interval_ns,
        arm_attacker=arm_attacker,
        rearm_between=rearm_between,
        chaos=chaos,
        watch_queue_depth=watch_queue_depth,
        watch_drain_interval_ns=watch_drain_interval_ns,
        watch_coalesce=watch_coalesce,
    )


def simplified(case: FuzzCase, **changes: Any) -> Optional[FuzzCase]:
    """A copy of ``case`` with ``changes``, or None if it would be invalid.

    The shrinker's safe-replace helper: every candidate it proposes
    goes through here, so shrinking can never emit an invalid spec.
    """
    candidate = replace(case, **changes)
    try:
        candidate.validate()
    except ReproError:
        return None
    return candidate
