"""Greedy deterministic shrinking of failing fuzz cases.

When an oracle fails, the raw case is usually noisy: six trials, three
shards, chaos, a grab-bag of defenses.  :func:`shrink_case` walks a
fixed candidate order — drop trials, collapse shards, strip chaos and
defenses, simplify the APK and timing — re-running the failure
predicate after each step and keeping only candidates that *still
fail*.  The walk is greedy and restarts after every accepted
simplification, so the result is a local minimum: no single listed
simplification applied to it still reproduces the failure.

Every candidate comes from :func:`repro.fuzz.gen.simplified`, which
validates before returning — shrinking can never emit an invalid spec
(pinned by the property suite).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.fuzz.gen import FuzzCase, simplified

#: Upper bound on predicate evaluations per shrink, a safety net against
#: a pathological predicate; the greedy walk converges far earlier.
DEFAULT_MAX_STEPS = 200


def shrink_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Single-step simplifications of ``case``, most aggressive first.

    Deterministic: the same case always yields the same candidates in
    the same order.  Invalid combinations are silently skipped (see
    :func:`repro.fuzz.gen.simplified`).
    """
    seen = {case}

    def emit(candidate: Optional[FuzzCase]) -> Iterator[FuzzCase]:
        if candidate is not None and candidate not in seen:
            seen.add(candidate)
            yield candidate

    # Fewer trials first: halve, then straight to one.
    if case.trials > 1:
        yield from emit(simplified(case, trials=1))
        if case.trials > 3:
            yield from emit(simplified(case, trials=case.trials // 2))
        yield from emit(simplified(case, trials=case.trials - 1))
    # Collapse the fleet: chaos depends on shards, so drop it together.
    if case.shards > 1:
        yield from emit(simplified(case, shards=1, chaos=None))
        yield from emit(simplified(case, shards=case.shards - 1, chaos=None))
    if case.chaos is not None:
        yield from emit(simplified(case, chaos=None))
    # Strip defenses one at a time (keeps the failing one findable).
    for index in range(len(case.defenses)):
        fewer = case.defenses[:index] + case.defenses[index + 1:]
        yield from emit(simplified(case, defenses=fewer))
    # Simplify the workload shape.
    if case.max_extra_permissions:
        yield from emit(simplified(case, max_extra_permissions=0))
    if case.poll_interval_ns is not None:
        yield from emit(simplified(case, poll_interval_ns=None))
    # Shrink toward lossless watchers: drop coalescing first (smaller
    # step), then the whole bounded queue.  A failure that needs loss
    # to reproduce keeps its depth/drain; anything else sheds them.
    if case.watch_coalesce:
        yield from emit(simplified(case, watch_coalesce=False))
    if case.watch_queue_depth is not None:
        yield from emit(simplified(case, watch_queue_depth=None,
                                   watch_drain_interval_ns=None))
    if case.base_size_bytes != 512:
        yield from emit(simplified(case, base_size_bytes=512))
    if case.device != "nexus5":
        yield from emit(simplified(case, device="nexus5"))
    if not case.rearm_between:
        yield from emit(simplified(case, rearm_between=True))
    # Last resort: remove the attack, then fall back to the reference
    # installer.  These change behaviour wholesale, so they only
    # survive when the failure has nothing to do with either.
    if case.attack != "none":
        yield from emit(simplified(case, attack="none",
                                   poll_interval_ns=None))
    if case.installer != "amazon":
        yield from emit(simplified(case, installer="amazon"))


def shrink_case(case: FuzzCase,
                still_fails: Callable[[FuzzCase], bool],
                max_steps: int = DEFAULT_MAX_STEPS) -> FuzzCase:
    """Greedily minimize ``case`` while ``still_fails`` holds.

    ``still_fails`` re-executes a candidate and reports whether the
    original failure reproduces; it is never called on ``case`` itself
    (the caller has already seen it fail).  Returns the smallest
    still-failing case found within ``max_steps`` predicate calls —
    ``case`` unchanged if no simplification reproduces the failure.
    """
    current = case
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in shrink_candidates(current):
            if steps >= max_steps:
                break
            steps += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break  # restart the candidate walk from the smaller case
    return current
