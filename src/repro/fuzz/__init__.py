"""repro.fuzz: deterministic scenario fuzzing with invariant oracles.

The fuzzer samples randomized-but-seeded AIT workloads — installer,
attack, defense, device and chaos combinations, randomized timing
offsets, APK sizes and permission shapes — lowers each one to a
:class:`repro.engine.CampaignSpec`, executes it through the existing
kernel and fleet engine, and checks a set of **invariant oracles**
(:mod:`repro.fuzz.oracles`): determinism, defense soundness, defense
completeness, outcome conservation and trace well-formedness.

On an oracle failure the workload is **shrunk**
(:mod:`repro.fuzz.shrink`) to a minimal still-failing case and written
to the regression corpus (:mod:`repro.fuzz.corpus`), which a pytest
replayer runs as part of tier-1.

Everything is a pure function of the fuzz seed: the same
``python -m repro fuzz --seed S --budget N`` run is byte-identical
across invocations, worker counts and backends.
"""

from repro.fuzz.corpus import (
    CORPUS_VERSION,
    corpus_entry,
    corpus_file_name,
    default_corpus_dir,
    load_corpus,
    replay_entry,
    write_corpus_case,
)
from repro.fuzz.gen import (
    FUZZ_ATTACKS,
    FUZZ_DEVICES,
    FUZZ_INSTALLERS,
    PERMISSION_POOL,
    FuzzCase,
    generate_case,
)
from repro.fuzz.oracles import (
    ORACLES,
    FuzzRun,
    Violation,
    check_run,
    oracle_names,
)
from repro.fuzz.runner import CaseResult, Fuzzer, FuzzReport
from repro.fuzz.shrink import shrink_case, shrink_candidates

__all__ = [
    "CORPUS_VERSION",
    "CaseResult",
    "FUZZ_ATTACKS",
    "FUZZ_DEVICES",
    "FUZZ_INSTALLERS",
    "FuzzCase",
    "FuzzReport",
    "FuzzRun",
    "Fuzzer",
    "ORACLES",
    "PERMISSION_POOL",
    "Violation",
    "check_run",
    "corpus_entry",
    "corpus_file_name",
    "default_corpus_dir",
    "generate_case",
    "load_corpus",
    "oracle_names",
    "replay_entry",
    "shrink_candidates",
    "shrink_case",
    "write_corpus_case",
]
