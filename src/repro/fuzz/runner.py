"""The fuzz loop: generate, execute twice, check, shrink, record.

:class:`Fuzzer` drives ``budget`` cases off one fuzz seed.  Each case
is lowered to a campaign spec and executed **twice** through
:func:`repro.engine.run_fleet` — the second execution feeds the
determinism oracle — then every enabled oracle inspects the pair.  A
failing case is greedily shrunk (:mod:`repro.fuzz.shrink`) to a minimal
reproducer and written to the regression corpus.

The loop itself is observable: with a recorder/metrics attached it
emits one ``fuzz/case`` span per case and ``fuzz/*`` counters.  The
fuzzer has no wall clock (determinism would die with it), so its trace
runs on **case index as the time axis** — span ``k`` covers
``[k, k+1)`` — which keeps the report byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.engine.executor import run_fleet
from repro.errors import ReproError
from repro.fuzz.corpus import write_corpus_case
from repro.fuzz.gen import FuzzCase, generate_case
from repro.fuzz.oracles import FuzzRun, Violation, check_run, oracle_names
from repro.fuzz.shrink import shrink_case
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_RECORDER

#: Engine-backed runs bound each shard; chaos "hang" shards would
#: otherwise stall an hour.  One timeout then serial fallback is the
#: cheapest deterministic path through fault injection.
_SHARD_TIMEOUT_S = 10.0


def execute_case(case: FuzzCase, sabotage_defense: Optional[str] = None,
                 backend: str = "serial",
                 workers: Optional[int] = None,
                 force_shards: Optional[int] = None,
                 strict_lossy: bool = False) -> FuzzRun:
    """Run ``case`` twice and bundle the evidence for the oracles.

    ``force_shards`` is the CLI's engine-backed mode: every case runs
    with that shard count instead of its own plan.  Case chaos is
    dropped with it — its indices were drawn against the case's count.
    ``strict_lossy`` holds plain DAPP to full completeness even on a
    lossy-watcher device (see :class:`~repro.fuzz.oracles.FuzzRun`).
    """
    if force_shards is not None:
        if case.attack != "none" and not case.rearm_between:
            force_shards = 1  # a one-shot attacker refuses to shard
        case = replace(case, shards=force_shards, chaos=None)
    # A sabotaged defense can only break where it is enabled; cases
    # without it run (and must stay) clean.
    if sabotage_defense is not None and sabotage_defense not in case.defenses:
        sabotage_defense = None
    spec = case.campaign_spec(observe=True,
                              sabotage_defense=sabotage_defense)
    kwargs = dict(shards=case.shards, backend=backend, workers=workers)
    if backend != "serial":
        kwargs.update(shard_timeout=_SHARD_TIMEOUT_S, max_retries=0)
    report = run_fleet(spec, **kwargs)
    replay = run_fleet(spec, **kwargs)
    return FuzzRun(case=case, report=report, replay=replay,
                   sabotage_defense=sabotage_defense or "",
                   strict_lossy=strict_lossy)


@dataclass
class CaseResult:
    """Verdict for one fuzzed case."""

    index: int
    case: FuzzCase
    violations: List[Violation] = field(default_factory=list)
    shrunk: Optional[FuzzCase] = None
    corpus_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class FuzzReport:
    """Everything one fuzz session produced."""

    fuzz_seed: int
    budget: int
    oracles: Tuple[str, ...]
    results: List[CaseResult] = field(default_factory=list)
    sabotage_defense: str = ""
    strict_lossy: bool = False

    @property
    def failures(self) -> List[CaseResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        """Deterministic human-readable summary (no wall clock)."""
        lines = [
            f"fuzz: seed={self.fuzz_seed} budget={self.budget} "
            f"oracles={','.join(self.oracles)}"
            + (f" sabotage={self.sabotage_defense}"
               if self.sabotage_defense else "")
            + (" strict-lossy" if self.strict_lossy else ""),
        ]
        for result in self.failures:
            lines.append(f"  case {result.index} FAILED "
                         f"({result.case.describe()})")
            for violation in result.violations:
                lines.append(f"    {violation}")
            if result.shrunk is not None:
                lines.append(f"    shrunk to: {result.shrunk.describe()}")
            if result.corpus_path is not None:
                lines.append(f"    corpus: {result.corpus_path.name}")
        lines.append(
            f"  {len(self.results) - len(self.failures)}/{len(self.results)} "
            f"case(s) green, {len(self.failures)} violation case(s)")
        return "\n".join(lines)


class Fuzzer:
    """Seeded fuzz sessions over the AIT scenario space."""

    def __init__(self, fuzz_seed: int,
                 oracles: Sequence[str] = (),
                 backend: str = "serial",
                 workers: Optional[int] = None,
                 force_shards: Optional[int] = None,
                 sabotage_defense: Optional[str] = None,
                 strict_lossy: bool = False,
                 corpus_dir: Optional[Path] = None,
                 recorder=NULL_RECORDER,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        unknown = set(oracles) - set(oracle_names())
        if unknown:
            raise ReproError(
                f"unknown oracle(s) {sorted(unknown)}; "
                f"valid: {oracle_names()}")
        self.fuzz_seed = fuzz_seed
        self.oracles = tuple(oracles) or oracle_names()
        self.backend = backend
        self.workers = workers
        self.force_shards = force_shards
        self.sabotage_defense = sabotage_defense
        self.strict_lossy = strict_lossy
        self.corpus_dir = Path(corpus_dir) if corpus_dir is not None else None
        self.recorder = recorder
        self.metrics = metrics

    # -- internals -------------------------------------------------------------

    def _execute(self, case: FuzzCase) -> FuzzRun:
        run = execute_case(case, sabotage_defense=self.sabotage_defense,
                           backend=self.backend, workers=self.workers,
                           force_shards=self.force_shards,
                           strict_lossy=self.strict_lossy)
        if self.metrics is not None:
            self.metrics.counter("fuzz/executions").inc()
        return run

    def _check(self, case: FuzzCase) -> List[Violation]:
        return check_run(self._execute(case), self.oracles)

    def check_case(self, index: int, case: FuzzCase) -> CaseResult:
        """Execute and judge one case; shrink + record on failure."""
        violations = self._check(case)
        result = CaseResult(index=index, case=case, violations=violations)
        if self.metrics is not None:
            self.metrics.counter("fuzz/cases").inc()
            if violations:
                self.metrics.counter("fuzz/violations").inc(len(violations))
        if self.recorder.enabled:
            # Case index is the fuzzer's deterministic clock.
            self.recorder.span("fuzz/case", index, index + 1,
                               case=case.case_id(),
                               attack=case.attack,
                               installer=case.installer,
                               violations=len(violations))
        if violations:
            failed_oracles = sorted({v.oracle for v in violations})
            result.shrunk = shrink_case(case, self._still_fails(failed_oracles))
            if self.metrics is not None and result.shrunk != case:
                self.metrics.counter("fuzz/shrunk").inc()
            if self.corpus_dir is not None:
                # Sabotage and strict-lossy sessions *hunt* for expected
                # violations; their finds pin the oracle's power.
                expect = ("fail" if self.sabotage_defense or self.strict_lossy
                          else "pass")
                note = (f"fuzz seed {self.fuzz_seed}, case {index}: "
                        + "; ".join(str(v) for v in violations[:3]))
                result.corpus_path = write_corpus_case(
                    self.corpus_dir, failed_oracles[0], result.shrunk,
                    note=note, expect=expect,
                    sabotage=self.sabotage_defense,
                    strict_lossy=self.strict_lossy,
                    violation=str(violations[0]))
        return result

    def _still_fails(self, failed_oracles: Sequence[str]):
        """Shrink predicate: does the *same* oracle still fire?"""
        names = tuple(failed_oracles)

        def predicate(candidate: FuzzCase) -> bool:
            found = check_run(self._execute(candidate), self.oracles)
            return any(v.oracle in names for v in found)

        return predicate

    # -- the loop --------------------------------------------------------------

    def run(self, budget: int) -> FuzzReport:
        """Fuzz ``budget`` cases; returns the full session report."""
        if budget < 1:
            raise ReproError(f"fuzz budget must be >= 1, got {budget}")
        report = FuzzReport(
            fuzz_seed=self.fuzz_seed, budget=budget, oracles=self.oracles,
            sabotage_defense=self.sabotage_defense or "",
            strict_lossy=self.strict_lossy)
        for index in range(budget):
            case = generate_case(self.fuzz_seed, index)
            report.results.append(self.check_case(index, case))
        return report
