"""Blocking client for the campaign service (the CLI verbs' engine).

One connection per request, matching the daemon's one-request
protocol: connect, send one canonical JSONL line, read the reply (or,
for ``watch``, read frames until a terminal one).  Errors the daemon
reports come back as :class:`~repro.errors.ReproError`, so CLI code
handles service-side and client-side failures through one path.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.engine.spec import CampaignSpec
from repro.errors import ReproError
from repro.fuzz.gen import FuzzCase
from repro.serve.protocol import (
    decode_message,
    encode_message,
    job_request,
    plain_request,
    submit_campaign_request,
    submit_fuzz_request,
)

#: Terminal watch-frame events (mirrors the daemon's contract).
TERMINAL_EVENTS = ("done", "failed", "cancelled")


class ServeClient:
    """Talk to a running ``repro serve`` daemon over its socket.

    Address is either a unix socket path (the default layout puts it at
    ``<state_dir>/serve.sock``) or a ``(host, port)`` pair for TCP.
    """

    def __init__(self, socket_path: Optional[Union[str, Path]] = None,
                 host: Optional[str] = None, port: Optional[int] = None,
                 timeout: float = 30.0) -> None:
        if socket_path is None and port is None:
            raise ReproError(
                "ServeClient needs a socket path or a host/port pair")
        self.socket_path = str(socket_path) if socket_path else None
        self.host = host if host is not None else "127.0.0.1"
        self.port = port
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
            return sock
        except OSError as exc:
            target = self.socket_path or f"{self.host}:{self.port}"
            raise ReproError(
                f"cannot reach the serve daemon at {target}: {exc} "
                f"(is `repro serve` running?)") from exc

    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip; raises ReproError on a service-side error."""
        try:
            with self._connect() as sock:
                sock.sendall(encode_message(message))
                with sock.makefile("rb") as stream:
                    line = stream.readline()
        except OSError as exc:
            # reset/refused mid-request: a daemon dying or restarting
            raise ReproError(
                f"serve daemon connection failed: {exc}") from exc
        if not line:
            raise ReproError("serve daemon closed the connection "
                             "without replying")
        reply = decode_message(line)
        if not reply.get("ok", False):
            raise ReproError(reply.get("error", "serve daemon error"))
        return reply

    # -- operations ------------------------------------------------------------

    def submit_campaign(self, spec: CampaignSpec,
                        shards: Optional[int] = None, priority: int = 0,
                        label: str = "",
                        derive_seed: bool = False) -> Dict[str, Any]:
        """Submit a campaign; returns the created job's wire dict."""
        reply = self._request(submit_campaign_request(
            spec, shards=shards, priority=priority, label=label,
            derive_seed=derive_seed))
        return reply["job"]

    def submit_fuzz(self, case: FuzzCase, priority: int = 0,
                    label: str = "") -> Dict[str, Any]:
        """Submit a fuzz case; returns the created job's wire dict."""
        reply = self._request(submit_fuzz_request(
            case, priority=priority, label=label))
        return reply["job"]

    def status(self, job_id: str) -> Dict[str, Any]:
        """One job's current wire dict."""
        return self._request(job_request("status", job_id))["job"]

    def jobs(self) -> Dict[str, Any]:
        """Every known job plus the daemon's health summary."""
        reply = self._request(plain_request("jobs"))
        return {"jobs": reply["jobs"], "health": reply["health"]}

    def health(self) -> Dict[str, Any]:
        """The daemon's health payload."""
        return self._request(plain_request("health"))["health"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued job; returns its final wire dict."""
        return self._request(job_request("cancel", job_id))["job"]

    def trace_info(self, job_id: str) -> Dict[str, Any]:
        """Where the job's archived trace lives (path + existence)."""
        return self._request(job_request("trace", job_id))

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition (``metrics`` op)."""
        return self._request(plain_request("metrics"))["exposition"]

    def flight(self) -> Dict[str, Any]:
        """The daemon's flight-recorder ring (``flight`` op)."""
        return self._request(plain_request("flight"))["flight"]

    def shutdown(self) -> None:
        """Ask the daemon to drain and stop."""
        self._request(plain_request("shutdown"))

    def watch(self, job_id: str,
              on_frame: Optional[Callable[[Dict[str, Any]], None]] = None,
              timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """Stream a job's frames until it reaches a terminal state.

        Returns every frame received (status snapshot, shard frames,
        terminal frame); ``on_frame`` sees each one as it arrives.
        ``timeout`` bounds the whole watch, not one read.
        """
        deadline = (time.monotonic() + timeout) if timeout else None
        frames: List[Dict[str, Any]] = []
        with self._connect() as sock:
            sock.sendall(encode_message(job_request("watch", job_id)))
            with sock.makefile("rb") as stream:
                while True:
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise ReproError(
                                f"watch of {job_id} timed out")
                        sock.settimeout(remaining)
                    line = stream.readline()
                    if not line:
                        raise ReproError(
                            f"serve daemon dropped the watch of {job_id}")
                    frame = decode_message(line)
                    if frame.get("ok") is False:
                        raise ReproError(
                            frame.get("error", "serve daemon error"))
                    frames.append(frame)
                    if on_frame is not None:
                        on_frame(frame)
                    if frame.get("event") in TERMINAL_EVENTS:
                        return frames

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job is terminal; returns its final wire dict."""
        frames = self.watch(job_id, timeout=timeout)
        return frames[-1]["job"]

    def wait_until_ready(self, timeout: float = 10.0,
                         interval: float = 0.05) -> Dict[str, Any]:
        """Poll ``health`` until the daemon answers (startup helper)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[ReproError] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ReproError as exc:
                last_error = exc
                time.sleep(interval)
        raise ReproError(
            f"serve daemon did not come up within {timeout:.0f}s: "
            f"{last_error}")
