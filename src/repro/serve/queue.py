"""Deterministic priority job queue for the campaign service.

Scheduling order is a pure function of the submission stream: higher
``priority`` first, FIFO within a priority level (tie-broken by the
monotonic submission sequence number, never by wall clock), so the
same submissions always run in the same order.  Per-job seeds are
deterministic too — a submission that asks the service to pick a seed
gets one forked from the service seed by job sequence number
(:meth:`repro.sim.rand.DeterministicRandom.fork`), so a replayed
submission stream reproduces byte-identical campaigns.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.spec import CampaignSpec
from repro.errors import ReproError
from repro.serve.protocol import JOB_STATES, stats_counters
from repro.sim.rand import DeterministicRandom

QUEUED, RUNNING, DONE, FAILED, CANCELLED = JOB_STATES

#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted campaign and everything the service knows about it."""

    job_id: str
    spec: CampaignSpec
    seq: int
    shards: Optional[int] = None
    priority: int = 0
    label: str = ""
    kind: str = "campaign"
    state: str = QUEUED
    error: str = ""
    #: ``(shards done, shards total)`` while running; final when done.
    progress: Tuple[int, int] = (0, 0)
    #: Flat stats counters once the job completes.
    summary: Optional[Dict[str, Any]] = None
    #: Executor fault/restore counters of the finished run.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock telemetry rollup of the job's shards (live while
    #: running, final on completion); None with telemetry off.  Rides
    #: beside the deterministic summary/counters, never inside them.
    telemetry: Optional[Dict[str, Any]] = None
    #: Monotonic submission time (service-local, never serialized):
    #: the scheduler derives queue-wait from it.
    submitted_at: float = 0.0

    @property
    def terminal(self) -> bool:
        """Has the job reached a state it can never leave?"""
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean wire form (the ``status``/``jobs`` payload)."""
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "kind": self.kind,
            "label": self.label,
            "priority": self.priority,
            "state": self.state,
            "error": self.error,
            "progress": list(self.progress),
            "summary": self.summary,
            "counters": dict(self.counters),
            "telemetry": dict(self.telemetry) if self.telemetry else None,
            "spec": self.spec.to_json_dict(),
            "shards": self.shards,
        }

    def finish(self, report) -> None:
        """Fold a finished :class:`FleetReport` into the job record."""
        self.state = DONE
        self.summary = stats_counters(report.stats)
        self.counters = dict(report.counters)
        self.progress = (len(report.shards), len(report.shards))
        folded = getattr(report, "telemetry", None)
        if folded:
            merged = dict(folded)
            if self.telemetry:  # keep the scheduler's queue-wait fold
                merged["queue_wait_s"] = self.telemetry.get(
                    "queue_wait_s", 0.0)
            self.telemetry = merged


class JobQueue:
    """Priority FIFO over :class:`Job` with deterministic seed derivation.

    Not thread-safe by itself — the service serializes access under its
    own lock; this class stays a pure data structure so its ordering
    contract is testable in isolation.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.jobs: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0

    # -- submission ------------------------------------------------------------

    def derive_seed(self, seq: int) -> int:
        """The per-job seed of submission ``seq`` (pure function)."""
        return DeterministicRandom(self.seed).fork(f"job-{seq}").seed

    def submit(self, spec: CampaignSpec, shards: Optional[int] = None,
               priority: int = 0, label: str = "", kind: str = "campaign",
               derive_seed: bool = False,
               job_id: Optional[str] = None,
               seq: Optional[int] = None) -> Job:
        """Enqueue one campaign; returns the new :class:`Job`.

        ``job_id``/``seq`` are normally assigned here (``job-NNNNNN``
        from the sequence counter); the recovery path passes the
        journaled values back in so a restarted daemon re-creates the
        exact same jobs.
        """
        if seq is None:
            seq = self._seq + 1
        self._seq = max(self._seq, seq)
        if job_id is None:
            job_id = f"job-{seq:06d}"
        if job_id in self.jobs:
            raise ReproError(f"duplicate job id {job_id!r}")
        if derive_seed:
            spec = replace(spec, seed=self.derive_seed(seq))
        job = Job(job_id=job_id, spec=spec, seq=seq, shards=shards,
                  priority=priority, label=label, kind=kind)
        self.jobs[job_id] = job
        heapq.heappush(self._heap, (-priority, seq, job_id))
        return job

    def register_finished(self, job: Job) -> None:
        """Adopt an already-terminal job (recovery of completed work)."""
        if not job.terminal:
            raise ReproError(
                f"register_finished needs a terminal job, "
                f"got state {job.state!r}")
        if job.job_id in self.jobs:
            raise ReproError(f"duplicate job id {job.job_id!r}")
        self.jobs[job.job_id] = job
        self._seq = max(self._seq, job.seq)

    # -- scheduling ------------------------------------------------------------

    def pop(self) -> Optional[Job]:
        """Highest-priority queued job (FIFO within priority), or None.

        Cancelled entries are skipped lazily; the popped job is marked
        ``running``.
        """
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self.jobs.get(job_id)
            if job is None or job.state != QUEUED:
                continue
            job.state = RUNNING
            return job
        return None

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job; running/terminal jobs refuse."""
        job = self.get(job_id)
        if job.state != QUEUED:
            raise ReproError(
                f"job {job_id} is {job.state}; only queued jobs cancel")
        job.state = CANCELLED
        return job

    # -- introspection ---------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job called ``job_id`` (raises on unknown ids)."""
        job = self.jobs.get(job_id)
        if job is None:
            raise ReproError(f"unknown job {job_id!r}")
        return job

    def depth(self) -> int:
        """How many jobs are waiting to run."""
        return sum(1 for job in self.jobs.values() if job.state == QUEUED)

    def running(self) -> Optional[Job]:
        """The currently running job, if any."""
        for job in self.jobs.values():
            if job.state == RUNNING:
                return job
        return None

    def ordered(self) -> List[Job]:
        """Every known job in submission order."""
        return sorted(self.jobs.values(), key=lambda job: job.seq)

    def by_state(self) -> Dict[str, int]:
        """Job counts per lifecycle state (every state, zeros included)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts
