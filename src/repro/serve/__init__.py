"""Long-running campaign service over the fleet engine.

``repro serve`` turns the one-shot :mod:`repro.engine` fleet into a
resident daemon: a warm worker pool that survives across jobs, a
deterministic priority job queue, per-shard crash checkpoints that
make kill/resume bit-identical, and a versioned JSONL protocol the
``repro submit``/``jobs``/``watch`` verbs speak over a local socket.

- :mod:`repro.serve.protocol` — versioned JSONL wire protocol.
- :mod:`repro.serve.queue` — deterministic priority FIFO + per-job seeds.
- :mod:`repro.serve.checkpoint` — shard journal + daemon state store.
- :mod:`repro.serve.daemon` — the service core and asyncio server.
- :mod:`repro.serve.client` — blocking client for the CLI verbs.
"""

from repro.serve.checkpoint import JobStore, ShardJournal, job_key
from repro.serve.client import ServeClient
from repro.serve.daemon import CampaignService, ServeDaemon, run_daemon
from repro.serve.protocol import (
    JOB_STATES,
    OPS,
    PROTOCOL_VERSION,
    Submission,
    decode_message,
    decode_request,
    encode_message,
    parse_submission,
)
from repro.serve.queue import Job, JobQueue

__all__ = [
    "CampaignService",
    "Job",
    "JobQueue",
    "JobStore",
    "JOB_STATES",
    "OPS",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeDaemon",
    "ShardJournal",
    "Submission",
    "decode_message",
    "decode_request",
    "encode_message",
    "job_key",
    "parse_submission",
    "run_daemon",
]
