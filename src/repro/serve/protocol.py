"""Versioned JSONL wire protocol of the campaign service.

One request per connection, one JSON object per line, canonical
serialization (sorted keys, compact separators) on both sides — so a
fixed conversation is byte-stable, the property the smoke tests lean
on.  Every message carries ``"v": PROTOCOL_VERSION``; a daemon or
client speaking another version is refused up front with a message
naming both versions, never half-parsed.

Operations::

    submit    enqueue a CampaignSpec ("kind": "campaign") or a
              FuzzCase ("kind": "fuzz"), with priority/label;
              "seed": null in a campaign spec asks the service to
              derive a per-job seed from its own seed stream
    status    one job's current state
    jobs      every known job, submission order
    watch     stream frames as shards land, ending in a terminal frame
    cancel    cancel a queued (not yet running) job
    health    daemon liveness: uptime, queue depth, warm-worker PIDs,
              jobs-by-state counts, pool counters
    trace     where the job's archived trace JSONL lives
    metrics   the service's counters/gauges/histograms plus wall-clock
              telemetry rollups as Prometheus text exposition
    flight    the daemon flight recorder's ring (structured ops events
              with overflow accounting)
    shutdown  drain and stop the daemon

Campaign specs ride as the canonical dict form from
:meth:`repro.engine.spec.CampaignSpec.to_json_dict`; fuzz cases as
:meth:`repro.fuzz.gen.FuzzCase.to_json` objects — both round-trip
exactly, which keeps a submitted job's checkpoint key stable across
daemon restarts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from repro.engine.spec import CampaignSpec
from repro.errors import ReproError
from repro.fuzz.gen import FuzzCase

#: The one protocol version this build speaks.
PROTOCOL_VERSION = 1

#: Every request operation the daemon dispatches on.
OPS = ("submit", "status", "jobs", "watch", "cancel", "health", "trace",
       "metrics", "flight", "shutdown")

#: Job lifecycle states, in the order they can occur.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Submission kinds and the payload field each carries.
SUBMIT_KINDS = {"campaign": "spec", "fuzz": "case"}


def encode_message(message: Dict[str, Any]) -> bytes:
    """Canonical JSONL bytes of one protocol message (newline included)."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one protocol line; validates shape and version."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ReproError("empty protocol message")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid protocol JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ReproError(
            f"protocol message must be an object, "
            f"got {type(message).__name__}")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ReproError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this build speaks {PROTOCOL_VERSION}")
    return message


def decode_request(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one request line; additionally validates the operation."""
    message = decode_message(line)
    op = message.get("op")
    if op not in OPS:
        raise ReproError(f"unknown operation {op!r}; valid: {OPS}")
    return message


# -- request builders ----------------------------------------------------------

def _base(op: str) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "op": op}


def submit_campaign_request(spec: CampaignSpec, shards: Optional[int] = None,
                            priority: int = 0, label: str = "",
                            derive_seed: bool = False) -> Dict[str, Any]:
    """A campaign submission; ``derive_seed`` nulls the seed so the
    service assigns one from its per-job seed stream."""
    spec_dict = spec.to_json_dict()
    if derive_seed:
        spec_dict["seed"] = None
    message = _base("submit")
    message.update({"kind": "campaign", "spec": spec_dict, "shards": shards,
                    "priority": priority, "label": label})
    return message


def submit_fuzz_request(case: FuzzCase, priority: int = 0,
                        label: str = "") -> Dict[str, Any]:
    """A fuzz-case submission (shard count comes from the case)."""
    message = _base("submit")
    message.update({"kind": "fuzz", "case": json.loads(case.to_json()),
                    "priority": priority, "label": label})
    return message


def job_request(op: str, job_id: str) -> Dict[str, Any]:
    """A request addressing one job (status/watch/cancel/trace)."""
    message = _base(op)
    message["job"] = job_id
    return message


def plain_request(op: str) -> Dict[str, Any]:
    """A request with no operands (jobs/health/metrics/flight/shutdown)."""
    return _base(op)


# -- responses -----------------------------------------------------------------

def ok_response(**fields: Any) -> Dict[str, Any]:
    """A success response carrying ``fields``."""
    message = {"v": PROTOCOL_VERSION, "ok": True}
    message.update(fields)
    return message


def error_response(error: str) -> Dict[str, Any]:
    """A failure response carrying the reason."""
    return {"v": PROTOCOL_VERSION, "ok": False, "error": error}


def event_frame(event: str, **fields: Any) -> Dict[str, Any]:
    """One stream frame (``watch``): shard progress or a terminal."""
    message = {"v": PROTOCOL_VERSION, "event": event}
    message.update(fields)
    return message


# -- submissions ---------------------------------------------------------------

@dataclass(frozen=True)
class Submission:
    """A validated, executable submission lowered from the wire form."""

    kind: str
    spec: CampaignSpec
    shards: Optional[int]
    priority: int
    label: str
    #: The campaign asked the service to assign a per-job seed.
    derive_seed: bool = False


def parse_submission(message: Dict[str, Any]) -> Submission:
    """Lower a ``submit`` request to a validated :class:`Submission`.

    Campaign specs are rebuilt through the
    :meth:`~repro.engine.spec.CampaignSpec.from_json_dict` round trip
    (which re-validates every field); fuzz cases go through
    :meth:`~repro.fuzz.gen.FuzzCase.from_json` and are lowered with
    ``observe=True`` so their traces are archived like any campaign.
    """
    kind = message.get("kind")
    if kind not in SUBMIT_KINDS:
        raise ReproError(
            f"unknown submission kind {kind!r}; "
            f"valid: {sorted(SUBMIT_KINDS)}")
    priority = message.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ReproError(f"priority must be an integer, got {priority!r}")
    label = message.get("label") or ""
    if not isinstance(label, str):
        raise ReproError(f"label must be a string, got {label!r}")
    shards = message.get("shards")
    if shards is not None and (not isinstance(shards, int)
                               or isinstance(shards, bool) or shards < 1):
        raise ReproError(f"shards must be a positive integer, got {shards!r}")
    if kind == "fuzz":
        payload = message.get("case")
        if not isinstance(payload, dict):
            raise ReproError("fuzz submission is missing its 'case' object")
        case = FuzzCase.from_json(json.dumps(payload))
        spec = case.campaign_spec(observe=True)
        return Submission(kind=kind, spec=spec, shards=case.shards,
                          priority=priority, label=label)
    payload = message.get("spec")
    if not isinstance(payload, dict):
        raise ReproError("campaign submission is missing its 'spec' object")
    payload = dict(payload)
    derive_seed = "seed" in payload and payload["seed"] is None
    if derive_seed:
        del payload["seed"]
    spec = CampaignSpec.from_json_dict(payload)
    return Submission(kind=kind, spec=spec, shards=shards,
                      priority=priority, label=label,
                      derive_seed=derive_seed)


def stats_counters(stats) -> Dict[str, int]:
    """A :class:`~repro.core.campaign.CampaignStats` as a flat dict.

    The stream frames' stats payload: every ``COUNTER_FIELDS`` entry,
    JSON-clean and mergeable by eye.
    """
    return {name: value for name, value
            in zip(stats.COUNTER_FIELDS, stats.counter_tuple())}
