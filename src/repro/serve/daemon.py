"""The resident campaign service: scheduler, executor glue, asyncio server.

Two layers, separable on purpose:

- :class:`CampaignService` is the synchronous, thread-safe core — the
  job queue, the **warm** :class:`~repro.engine.executor.FleetExecutor`
  (resident worker pool reused across jobs), the on-disk
  :class:`~repro.serve.checkpoint.JobStore`, and the ``serve/*``
  metrics.  It knows nothing about sockets, so tests drive it directly.
- :class:`ServeDaemon` wraps the service in an asyncio JSONL server
  (unix socket by default, local TCP optionally) speaking
  :mod:`repro.serve.protocol`, with a scheduler task that feeds queued
  jobs to the executor one at a time on a worker thread and streams
  shard-completion frames to ``watch`` subscribers as they land.

Crash recovery: every submission is journaled before it is
acknowledged and every terminal state is journaled after; a restarted
daemon replays the journal, re-enqueues unfinished jobs, and — because
each job checkpoints per-shard through a
:class:`~repro.serve.checkpoint.ShardJournal` — resumes them from
their last completed shard with bit-identical final stats.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Union

from repro.engine.executor import FleetExecutor
from repro.engine.progress import FleetProgress, NullProgress
from repro.engine.spec import CampaignSpec
from repro.errors import ReproError
from repro.obs.export import write_trace_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    FlightRecorder,
    TelemetryRollup,
    render_prometheus,
)
from repro.serve.checkpoint import JobStore, ShardJournal
from repro.serve.protocol import (
    Submission,
    decode_request,
    encode_message,
    error_response,
    event_frame,
    ok_response,
    parse_submission,
    stats_counters,
)
from repro.serve.queue import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobQueue,
    TERMINAL_STATES,
)

#: Stream-frame events that end a ``watch``.
TERMINAL_EVENTS = ("done", "failed", "cancelled")

#: How long an idle scheduler sleeps between queue checks when no
#: submission wake-up arrives (a robustness backstop, not the normal
#: wake path).
_SCHEDULER_IDLE_S = 0.25


class _JobProgress(FleetProgress):
    """Engine progress adapter: shard completions become stream frames.

    Folds each landed shard into a running merged-stats view (arrival
    order — a transient view; the final report re-merges in shard-index
    order, which is the deterministic one) and forwards it to the
    service's subscribers.
    """

    def __init__(self, service: "CampaignService", job: Job) -> None:
        self.service = service
        self.job = job
        self._merged = None

    def on_shard_done(self, result, done: int, total: int) -> None:
        from repro.core.campaign import CampaignStats

        if self._merged is None:
            self._merged = CampaignStats()
        self._merged = self._merged.merge(result.stats)
        self.service._on_shard_done(self.job, result, done, total,
                                    stats_counters(self._merged))


class CampaignService:
    """The daemon's synchronous core: queue + warm executor + store."""

    def __init__(self, state_dir, workers: Optional[int] = None,
                 backend: str = "auto", seed: int = 0,
                 metrics: Optional[MetricsRegistry] = None,
                 telemetry: bool = True) -> None:
        self.store = JobStore(state_dir)
        self.queue = JobQueue(seed)
        #: Shard workers sample rusage/perf_counter_ns around each
        #: shard by default in service mode: the daemon is exactly the
        #: long-lived operational context the telemetry plane exists
        #: for.  ``telemetry=False`` restores the zero-overhead path.
        self.telemetry = telemetry
        self.executor = FleetExecutor(workers=workers, backend=backend,
                                      warm=True, telemetry=telemetry)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Bounded ops-event ring, file-backed in the state dir so the
        #: recent event history survives a SIGKILL/restart cycle.
        self.flight = FlightRecorder(path=self.store.flight_path())
        self._rollup = TelemetryRollup()
        self._job_rollups: Dict[str, TelemetryRollup] = {}
        self._lock = threading.RLock()
        self._listeners: Dict[str, List[Callable[[Dict[str, Any]], None]]] = {}
        self._started_at = time.monotonic()
        #: Called (thread-safely) after every accepted submission; the
        #: daemon points this at its scheduler wake-up.
        self.on_submit: Optional[Callable[[], None]] = None

    # -- recovery --------------------------------------------------------------

    def recover(self) -> int:
        """Replay the job journal; returns how many jobs were re-enqueued.

        Jobs with a terminal record are registered for status queries;
        jobs without one (the daemon died first) go back on the queue
        in their original order with their original ids, seeds and
        priorities, and will resume from their shard checkpoints.
        """
        submits: List[Dict[str, Any]] = []
        ends: Dict[str, Dict[str, Any]] = {}
        for record in self.store.read_journal():
            if record.get("event") == "submit":
                submits.append(record)
            elif record.get("event") == "end":
                ends[record.get("job_id")] = record
        requeued = 0
        with self._lock:
            for record in sorted(submits, key=lambda r: r.get("seq", 0)):
                job_id = record["job_id"]
                spec = CampaignSpec.from_json_dict(record["spec"])
                end = ends.get(job_id)
                if end is not None:
                    job = Job(
                        job_id=job_id, spec=spec, seq=record["seq"],
                        shards=record.get("shards"),
                        priority=record.get("priority", 0),
                        label=record.get("label", ""),
                        kind=record.get("kind", "campaign"),
                        state=end.get("state", DONE),
                        error=end.get("error", ""),
                        summary=end.get("summary"),
                        counters=end.get("counters") or {},
                    )
                    if job.state not in TERMINAL_STATES:
                        job.state = FAILED
                    self.queue.register_finished(job)
                    continue
                self.queue.submit(
                    spec, shards=record.get("shards"),
                    priority=record.get("priority", 0),
                    label=record.get("label", ""),
                    kind=record.get("kind", "campaign"),
                    job_id=job_id, seq=record["seq"],
                )
                requeued += 1
            if requeued:
                self.metrics.counter("serve/jobs_recovered").inc(requeued)
            self.flight.record("recover", requeued=requeued,
                               finished=len(ends))
        return requeued

    # -- submission / queue management -----------------------------------------

    def submit(self, submission: Submission) -> Job:
        """Journal and enqueue one submission; returns the new job."""
        with self._lock:
            job = self.queue.submit(
                submission.spec, shards=submission.shards,
                priority=submission.priority, label=submission.label,
                kind=submission.kind, derive_seed=submission.derive_seed,
            )
            # Journal the *post-derivation* spec: recovery must not
            # re-derive, or a restarted daemon could change a job's seed.
            self.store.append_journal({
                "event": "submit",
                "job_id": job.job_id,
                "seq": job.seq,
                "kind": job.kind,
                "label": job.label,
                "priority": job.priority,
                "shards": job.shards,
                "spec": job.spec.to_json_dict(),
            })
            self.metrics.counter("serve/jobs_submitted").inc()
            self.metrics.gauge("serve/queue_depth_peak").set(
                self.queue.depth())
            job.submitted_at = time.monotonic()
            self.flight.record("submit", job=job.job_id, job_kind=job.kind,
                               priority=job.priority)
        if self.on_submit is not None:
            self.on_submit()
        return job

    def try_pop(self) -> Optional[Job]:
        """Claim the next queued job for execution, if any."""
        with self._lock:
            job = self.queue.pop()
            if job is not None:
                self.flight.record("schedule", job=job.job_id,
                                   queue_depth=self.queue.depth())
            return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (journaled like any terminal state)."""
        with self._lock:
            job = self.queue.cancel(job_id)
            self._journal_end(job)
            self.metrics.counter("serve/jobs_cancelled").inc()
            self.flight.record("cancel", job=job.job_id)
            self._publish(job.job_id,
                          event_frame("cancelled", job=job.to_dict()))
        return job

    def get_job(self, job_id: str) -> Job:
        """One job's record (raises on unknown ids)."""
        with self._lock:
            return self.queue.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, submission order."""
        with self._lock:
            return self.queue.ordered()

    # -- execution -------------------------------------------------------------

    def execute(self, job: Job) -> None:
        """Run one claimed job to a terminal state (blocking).

        Called from the scheduler's worker thread.  The job checkpoints
        every shard through its :class:`ShardJournal`, so dying here
        (or being killed) loses at most the in-flight shards.
        """
        spec = job.spec
        shard_count = (job.shards if job.shards is not None
                       else self.executor.workers)
        journal = ShardJournal(self.store.checkpoint_dir(job.job_id),
                               spec, shard_count)
        restarts_before = self.pool_restarts()
        queue_wait = (max(0.0, time.monotonic() - job.submitted_at)
                      if job.submitted_at else 0.0)
        with self._lock:
            self.metrics.gauge("serve/queue_depth_peak").set(
                self.queue.depth())
            self.flight.record("start", job=job.job_id, shards=shard_count,
                               queue_wait_s=round(queue_wait, 3))
            if self.telemetry:
                rollup = self._job_rollups.setdefault(job.job_id,
                                                      TelemetryRollup())
                rollup.queue_wait_s += queue_wait
                self._rollup.queue_wait_s += queue_wait
        self.executor.progress = _JobProgress(self, job)
        try:
            report = self.executor.run(spec, shards=shard_count,
                                       checkpoint=journal)
        except Exception as exc:
            with self._lock:
                job.state = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                self._journal_end(job)
                self.metrics.counter("serve/jobs_failed").inc()
                self._account_restarts(restarts_before)
                self.flight.record("crash", job=job.job_id, error=job.error)
                self._publish(job.job_id,
                              event_frame("failed", job=job.to_dict()))
            return
        finally:
            self.executor.progress = NullProgress()
        if spec.observe:
            trace_path = self.store.trace_path(job.job_id)
            trace_path.parent.mkdir(parents=True, exist_ok=True)
            write_trace_jsonl(str(trace_path), report.trace_records())
        with self._lock:
            job.finish(report)
            self.store.write_result(job.job_id, {
                "job_id": job.job_id,
                "state": job.state,
                "stats": job.summary,
                "counters": job.counters,
                "telemetry": job.telemetry,
                "shards": len(report.shards),
                "workers": report.workers,
                "backend": report.backend,
                "wall_seconds": report.wall_seconds,
                "render": report.render(),
            })
            self._journal_end(job)
            self.metrics.counter("serve/jobs_completed").inc()
            self._account_restarts(restarts_before)
            self.flight.record("finish", job=job.job_id,
                               shards=len(report.shards),
                               wall_s=round(report.wall_seconds, 3))
            self._publish(job.job_id, event_frame("done", job=job.to_dict()))

    def _journal_end(self, job: Job) -> None:
        self.store.append_journal({
            "event": "end",
            "job_id": job.job_id,
            "state": job.state,
            "error": job.error,
            "summary": job.summary,
            "counters": job.counters,
        })

    def pool_restarts(self) -> int:
        """Cumulative warm-pool worker restarts so far."""
        pool = self.executor._pool
        return pool.restarts if pool is not None else 0

    def _account_restarts(self, before: int) -> None:
        delta = self.pool_restarts() - before
        if delta > 0:
            self.metrics.counter("serve/worker_restarts").inc(delta)

    def _on_shard_done(self, job: Job, result, done: int, total: int,
                       merged_counters: Dict[str, int]) -> None:
        with self._lock:
            job.progress = (done, total)
            self.metrics.counter("serve/shards_completed").inc()
            payload = getattr(result, "telemetry", None)
            if payload:
                rollup = self._job_rollups.setdefault(job.job_id,
                                                      TelemetryRollup())
                rollup.add(payload)
                self._rollup.add(payload)
                job.telemetry = rollup.to_dict()
                self.metrics.histogram("serve/shard_wall_ms").observe(
                    max(0, int(payload.get("wall_ns", 0)) // 1_000_000))
                self.metrics.histogram("serve/shard_cpu_ms").observe(
                    max(0, int((float(payload.get("cpu_user_s", 0.0))
                                + float(payload.get("cpu_system_s", 0.0)))
                               * 1000)))
                self.metrics.histogram("serve/shard_rss_kb").observe(
                    max(0, int(payload.get("max_rss_kb", 0))))
            self.flight.record("checkpoint", job=job.job_id,
                               shard=result.shard_index, done=done,
                               total=total)
            self._publish(job.job_id, event_frame(
                "shard",
                job_id=job.job_id,
                shard=result.shard_index,
                done=done,
                total=total,
                stats=merged_counters,
                telemetry=payload,
            ))

    # -- streaming -------------------------------------------------------------

    def subscribe(self, job_id: str,
                  listener: Callable[[Dict[str, Any]], None]) -> Job:
        """Register a frame listener; returns the job snapshot atomically.

        Registration and snapshot happen under one lock hold, so a
        frame published right after cannot be missed: either it is in
        the snapshot's state or the listener receives it.
        """
        with self._lock:
            job = self.queue.get(job_id)
            self._listeners.setdefault(job_id, []).append(listener)
            return job

    def unsubscribe(self, job_id: str,
                    listener: Callable[[Dict[str, Any]], None]) -> None:
        """Remove a previously registered frame listener."""
        with self._lock:
            listeners = self._listeners.get(job_id, [])
            if listener in listeners:
                listeners.remove(listener)
            if not listeners:
                self._listeners.pop(job_id, None)

    def _publish(self, job_id: str, frame: Dict[str, Any]) -> None:
        for listener in self._listeners.get(job_id, []):
            listener(frame)

    # -- health ----------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Liveness and load summary (the ``health`` op's payload)."""
        with self._lock:
            running = self.queue.running()
            counters = {
                name: self.metrics.counter(f"serve/{name}").value
                for name in ("jobs_submitted", "jobs_completed",
                             "jobs_failed", "jobs_cancelled",
                             "jobs_recovered", "shards_completed",
                             "worker_restarts")
            }
            pool = self.executor._pool
            worker_pids = ({str(slot): pid for slot, pid
                            in sorted(pool.worker_pids().items())}
                           if pool is not None and not pool.closed else {})
            return {
                "ok": True,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "queue_depth": self.queue.depth(),
                "running": running.job_id if running is not None else None,
                "workers": self.executor.workers,
                "backend": self.executor.backend,
                "warm_pool": self.executor._pool is not None,
                "worker_pids": worker_pids,
                "jobs_by_state": self.queue.by_state(),
                "telemetry": (self._rollup.to_dict()
                              if self._rollup.shards else None),
                "state_dir": str(self.store.state_dir),
                **counters,
            }

    # -- telemetry exposition --------------------------------------------------

    def prometheus(self) -> str:
        """Prometheus text exposition (the ``metrics`` op's payload).

        Renders the ``serve/*`` registry (counters, gauges and the
        per-shard wall/CPU/RSS histograms) plus the wall-clock
        telemetry rollups, service-wide and per job.  Composed under
        the service lock so the scrape is a consistent snapshot.
        """
        with self._lock:
            snapshot = self.metrics.snapshot()
            rollup = (self._rollup.to_dict()
                      if self._rollup.shards or self._rollup.queue_wait_s
                      else None)
            job_rollups = {job_id: fold.to_dict()
                           for job_id, fold in self._job_rollups.items()
                           if fold.shards}
            gauges = {
                "serve/uptime_seconds":
                    round(time.monotonic() - self._started_at, 3),
                "serve/queue_depth": self.queue.depth(),
                "serve/warm_workers":
                    len(self.executor._pool.worker_pids())
                    if (self.executor._pool is not None
                        and not self.executor._pool.closed) else 0,
                "serve/flight_events": self.flight.recorded,
                "serve/flight_dropped": self.flight.dropped,
            }
        return render_prometheus(snapshot, rollup=rollup,
                                 job_rollups=job_rollups, gauges=gauges)

    def flight_snapshot(self) -> Dict[str, Any]:
        """The flight recorder's ring (the ``flight`` op's payload)."""
        with self._lock:
            return self.flight.snapshot()

    def job_telemetry(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One job's wall-clock rollup (live or final), if any."""
        with self._lock:
            fold = self._job_rollups.get(job_id)
            if fold is not None and fold.shards:
                return fold.to_dict()
            return self.queue.get(job_id).telemetry

    def close(self) -> None:
        """Shut the warm pool down deterministically (idempotent)."""
        self.executor.close()


class ServeDaemon:
    """Asyncio JSONL front-end over a :class:`CampaignService`."""

    def __init__(self, service: CampaignService,
                 socket_path: Optional[Union[str, "os.PathLike"]] = None,
                 host: Optional[str] = None,
                 port: Optional[int] = None) -> None:
        self.service = service
        if socket_path is None and port is None:
            socket_path = service.store.default_socket_path()
        self.socket_path = str(socket_path) if socket_path else None
        self.host = host if host is not None else "127.0.0.1"
        self.port = port
        self._stop: Optional[asyncio.Event] = None
        self._wake: Optional[asyncio.Event] = None

    # -- lifecycle -------------------------------------------------------------

    async def serve_forever(self,
                            ready: Optional[threading.Event] = None) -> None:
        """Accept connections and run jobs until ``shutdown`` (or stop()).

        ``ready`` (a *threading* event) is set once the socket is
        listening and the scheduler is live — what ``repro serve``
        scripts and the tests wait on.
        """
        import os

        loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._wake = asyncio.Event()
        self.service.on_submit = (
            lambda: loop.call_soon_threadsafe(self._wake.set))
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)  # stale socket from a kill -9
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path)
        else:
            server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port or 0)
            self.port = server.sockets[0].getsockname()[1]
        scheduler = loop.create_task(self._scheduler(loop))
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            self._wake.set()
            await scheduler
            self.service.close()
            if self.socket_path is not None and os.path.exists(
                    self.socket_path):
                os.unlink(self.socket_path)

    def stop(self) -> None:
        """Request shutdown (safe from signal handlers on the loop)."""
        if self._stop is not None:
            self._stop.set()

    async def _scheduler(self, loop) -> None:
        """Feed queued jobs to the executor, one at a time, off-loop.

        One job at a time keeps the warm pool's full width available
        to the running campaign's shards; job-level throughput comes
        from pool reuse, not job overlap.
        """
        while not self._stop.is_set():
            job = self.service.try_pop()
            if job is None:
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(),
                                           timeout=_SCHEDULER_IDLE_S)
                except asyncio.TimeoutError:
                    pass
                continue
            await loop.run_in_executor(None, self.service.execute, job)

    # -- connection handling ---------------------------------------------------

    async def _write(self, writer: asyncio.StreamWriter,
                     message: Dict[str, Any]) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                message = decode_request(line)
            except ReproError as exc:
                await self._write(writer, error_response(str(exc)))
                return
            try:
                await self._dispatch(message, writer)
            except ReproError as exc:
                await self._write(writer, error_response(str(exc)))
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-reply; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, message: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> None:
        op = message["op"]
        if op == "submit":
            job = self.service.submit(parse_submission(message))
            await self._write(writer, ok_response(job=job.to_dict()))
        elif op == "status":
            job = self.service.get_job(self._job_id(message))
            await self._write(writer, ok_response(job=job.to_dict()))
        elif op == "jobs":
            await self._write(writer, ok_response(
                jobs=[job.to_dict() for job in self.service.jobs()],
                health=self.service.health()))
        elif op == "health":
            await self._write(writer, ok_response(
                health=self.service.health()))
        elif op == "cancel":
            job = self.service.cancel(self._job_id(message))
            await self._write(writer, ok_response(job=job.to_dict()))
        elif op == "trace":
            job = self.service.get_job(self._job_id(message))
            path = self.service.store.trace_path(job.job_id)
            await self._write(writer, ok_response(
                job_id=job.job_id, path=str(path), exists=path.exists()))
        elif op == "metrics":
            await self._write(writer, ok_response(
                exposition=self.service.prometheus()))
        elif op == "flight":
            await self._write(writer, ok_response(
                flight=self.service.flight_snapshot()))
        elif op == "watch":
            await self._watch(self._job_id(message), writer)
        elif op == "shutdown":
            await self._write(writer, ok_response(stopping=True))
            self.stop()

    @staticmethod
    def _job_id(message: Dict[str, Any]) -> str:
        job_id = message.get("job")
        if not isinstance(job_id, str) or not job_id:
            raise ReproError("request is missing its 'job' id")
        return job_id

    async def _watch(self, job_id: str,
                     writer: asyncio.StreamWriter) -> None:
        """Stream shard frames for one job until it reaches a terminal.

        The first frame is always a ``status`` snapshot; an
        already-terminal job gets its terminal frame immediately.
        """
        loop = asyncio.get_running_loop()
        frames: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()

        def listener(frame: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(frames.put_nowait, frame)

        job = self.service.subscribe(job_id, listener)
        try:
            await self._write(writer,
                              event_frame("status", job=job.to_dict()))
            if job.terminal:
                event = {DONE: "done", FAILED: "failed",
                         CANCELLED: "cancelled"}[job.state]
                await self._write(writer,
                                  event_frame(event, job=job.to_dict()))
                return
            while True:
                frame = await frames.get()
                await self._write(writer, frame)
                if frame.get("event") in TERMINAL_EVENTS:
                    return
        finally:
            self.service.unsubscribe(job_id, listener)


def run_daemon(state_dir, socket_path=None, host=None, port=None,
               workers: Optional[int] = None, backend: str = "auto",
               seed: int = 0, telemetry: bool = True,
               on_ready: Optional[Callable[["ServeDaemon"], None]] = None
               ) -> int:
    """Build, recover and run a daemon until shutdown (the CLI engine).

    Returns 0 on a clean stop.  SIGTERM/SIGINT trigger the same
    graceful path as the ``shutdown`` op: finish the running job,
    close the warm pool, remove the socket.
    """
    import signal

    service = CampaignService(state_dir, workers=workers, backend=backend,
                              seed=seed, telemetry=telemetry)
    requeued = service.recover()
    daemon = ServeDaemon(service, socket_path=socket_path, host=host,
                         port=port)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, daemon.stop)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or exotic platform
        ready: threading.Event = threading.Event()
        task = loop.create_task(daemon.serve_forever(ready))
        while not ready.is_set():
            await asyncio.sleep(0.01)
        if on_ready is not None:
            on_ready(daemon)
        await task

    asyncio.run(_main())
    return 0 if requeued >= 0 else 1
