"""Shard-completion journal and on-disk job store for ``repro serve``.

:class:`ShardJournal` is the campaign service's crash-survival story:
every completed shard's :class:`~repro.engine.merge.ShardResult` is
written to a content-addressed file the moment it lands, with a
manifest naming which shards are done.  A killed campaign resumed from
the journal re-runs only the missing shards, and because per-shard
results are deterministic and the engine merges in shard-index order,
the resumed run's merged stats are **bit-identical** — and its trace
JSONL **byte-identical** — to an uninterrupted run of the same seed
(pinned by ``tests/serve/test_resume.py``).

:class:`JobStore` is the daemon's state-directory layout: the
append-only job journal (``jobs.jsonl``), per-job directories holding
the checkpoint journal, the archived trace, and the final result.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.engine.merge import ShardResult
from repro.engine.spec import CampaignSpec
from repro.errors import ReproError

#: Bumped when the journal layout or the pickle payload shape changes;
#: a journal written by another version is refused, never misread.
JOURNAL_VERSION = 1

_MANIFEST = "manifest.json"


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a same-directory rename.

    The rename is atomic on POSIX, so a reader (or a crash) sees either
    the old file or the new one — never a torn write.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def job_key(spec: CampaignSpec, shard_count: int) -> str:
    """Content key of one ``(spec, shard layout)`` pair (16 hex chars).

    Derived from the spec's canonical JSON, so two campaigns with equal
    specs and shard counts share a key and a resumed run can verify it
    is reading *its own* journal.
    """
    material = (f"{spec.canonical_json()}|shards={shard_count}"
                f"|v{JOURNAL_VERSION}")
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class ShardJournal:
    """Content-addressed shard-completion journal for one campaign.

    Plugs into :meth:`repro.engine.executor.FleetExecutor.run` via its
    ``checkpoint`` parameter: ``record`` is called as each shard result
    lands (before the fleet moves on), ``restore`` is called at the
    start of a run to recover completed shards.  Restoration verifies
    each payload's SHA-256 before trusting it; a corrupt or missing
    shard file is simply dropped, so the worst case of on-disk damage
    is re-running a shard, never merging bad data.
    """

    def __init__(self, root: Union[str, Path], spec: CampaignSpec,
                 shard_count: int) -> None:
        if shard_count < 1:
            raise ReproError(
                f"checkpoint shard count must be >= 1, got {shard_count}")
        self.root = Path(root)
        self.spec = spec
        self.shard_count = shard_count
        self.key = job_key(spec, shard_count)

    # -- manifest --------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        path = self._manifest_path()
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"checkpoint manifest {path} is unreadable: {exc}") from exc
        if manifest.get("version") != JOURNAL_VERSION:
            raise ReproError(
                f"checkpoint {self.root} has journal version "
                f"{manifest.get('version')!r}; this build speaks "
                f"{JOURNAL_VERSION}")
        if manifest.get("job_key") != self.key:
            raise ReproError(
                f"checkpoint {self.root} belongs to a different campaign "
                f"(job key {manifest.get('job_key')!r}, expected "
                f"{self.key!r}); point --checkpoint at a fresh directory")
        return manifest

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(manifest, sort_keys=True, indent=2) + "\n"
        _atomic_write(self._manifest_path(), payload.encode("utf-8"))

    def _fresh_manifest(self) -> Dict[str, Any]:
        return {
            "version": JOURNAL_VERSION,
            "job_key": self.key,
            "spec": self.spec.to_json_dict(),
            "shards": self.shard_count,
            "completed": {},
        }

    # -- journal API (the executor's checkpoint duck type) ---------------------

    def record(self, result: ShardResult) -> None:
        """Durably record one completed shard (idempotent per index).

        The payload file is content-addressed by its SHA-256, written
        atomically, and only then named in the manifest — a crash
        between the two leaves an orphan file, never a manifest entry
        pointing at garbage.
        """
        if not 0 <= result.shard_index < self.shard_count:
            raise ReproError(
                f"shard index {result.shard_index} outside the journal's "
                f"{self.shard_count}-shard layout")
        manifest = self._read_manifest() or self._fresh_manifest()
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        name = f"shard-{result.shard_index:05d}-{digest[:12]}.bin"
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.root / name, payload)
        manifest["completed"][str(result.shard_index)] = {
            "file": name,
            "sha256": digest,
            "attempts": result.attempts,
            "backend": result.backend,
        }
        self._write_manifest(manifest)

    def restore(self, spec: CampaignSpec,
                shard_count: int) -> Dict[int, ShardResult]:
        """Load every verified completed shard; empty dict when none.

        Called by the executor with the campaign it is about to run;
        a journal recorded for a different spec or layout raises
        instead of silently resuming the wrong campaign.
        """
        if job_key(spec, shard_count) != self.key:
            raise ReproError(
                "checkpoint journal was opened for a different campaign "
                "than the one being run")
        manifest = self._read_manifest()
        if manifest is None:
            return {}
        restored: Dict[int, ShardResult] = {}
        for index_text, entry in manifest.get("completed", {}).items():
            index = int(index_text)
            path = self.root / entry["file"]
            try:
                payload = path.read_bytes()
            except OSError:
                continue  # missing file: re-run the shard
            if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
                continue  # corrupt file: re-run the shard
            try:
                result = pickle.loads(payload)
            except Exception:
                continue  # unpicklable: re-run the shard
            if (not isinstance(result, ShardResult)
                    or result.shard_index != index):
                continue
            restored[index] = result
        return restored

    def completed_indices(self) -> List[int]:
        """Shard indices the manifest currently names, sorted."""
        manifest = self._read_manifest()
        if manifest is None:
            return []
        return sorted(int(index) for index in manifest.get("completed", {}))


class JobStore:
    """The serve daemon's state directory.

    Layout (all under ``state_dir``)::

        jobs.jsonl                      append-only submit/done journal
        jobs/<job_id>/checkpoint/       ShardJournal of the job
        jobs/<job_id>/trace.jsonl       archived trace (observe=True)
        jobs/<job_id>/result.json       final stats + render

    The journal is how a restarted daemon knows what it owes: a job
    with a ``submit`` record and no terminal record is re-enqueued and
    resumed from its checkpoint.
    """

    def __init__(self, state_dir: Union[str, Path]) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        """The append-only job journal."""
        return self.state_dir / "jobs.jsonl"

    def default_socket_path(self) -> Path:
        """Where ``repro serve`` listens unless told otherwise."""
        return self.state_dir / "serve.sock"

    def flight_path(self) -> Path:
        """The daemon flight recorder's JSONL sidecar.

        File-backed so the ops-event ring survives a SIGKILL: the
        restarted daemon reloads it and still knows what its
        predecessor was doing (see
        :class:`repro.obs.runtime.FlightRecorder`).
        """
        return self.state_dir / "flight.jsonl"

    def job_dir(self, job_id: str) -> Path:
        """Per-job artifact directory (created on demand)."""
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise ReproError(f"invalid job id {job_id!r}")
        return self.state_dir / "jobs" / job_id

    def checkpoint_dir(self, job_id: str) -> Path:
        """The job's shard-journal directory."""
        return self.job_dir(job_id) / "checkpoint"

    def trace_path(self, job_id: str) -> Path:
        """The job's archived trace JSONL."""
        return self.job_dir(job_id) / "trace.jsonl"

    def result_path(self, job_id: str) -> Path:
        """The job's final result JSON."""
        return self.job_dir(job_id) / "result.json"

    # -- job journal -----------------------------------------------------------

    def append_journal(self, record: Dict[str, Any]) -> None:
        """Append one event record (``submit``/``done``/...) durably."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def read_journal(self) -> List[Dict[str, Any]]:
        """Every journal record in append order (empty when absent).

        A torn final line (daemon killed mid-append) is dropped rather
        than poisoning recovery.
        """
        path = self.journal_path
        if not path.exists():
            return []
        records = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return records

    # -- results ---------------------------------------------------------------

    def write_result(self, job_id: str, payload: Dict[str, Any]) -> Path:
        """Atomically write the job's final result JSON."""
        path = self.result_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        _atomic_write(path, text.encode("utf-8"))
        return path

    def read_result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The job's final result JSON, or None before completion."""
        path = self.result_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))
