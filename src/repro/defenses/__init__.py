"""Defenses against the Ghost Installer Attacks — Section V of the paper.

- :mod:`repro.defenses.dapp` — the user-level app (no OS changes):
  signature grab at download completion, verification at install,
  race-condition heuristics on the event stream,
- :mod:`repro.defenses.dapp_rescan` — the hybrid variant: DAPP's
  notify path plus offline directory rescans triggered by watch-queue
  overflow (restores detection against ``watcher-flood``),
- :mod:`repro.defenses.fuse_dac` — the system-level FUSE DAC scheme:
  640-mode APKs, owner-only writes enforced in
  ``check_caller_access_to_name``, path-alteration guard in
  ``handle_rename`` backed by the APK list,
- :mod:`repro.defenses.intent_detection` — the IntentFirewall
  consecutive-Intent detector with the paper's three whitelist rules,
- :mod:`repro.defenses.intent_origin` — delivery of the sender's
  package name in the hidden ``mIntentOrigin`` field.
"""

from repro.defenses.dapp import Dapp
from repro.defenses.dapp_rescan import DappRescan
from repro.defenses.fuse_dac import HardenedFuseDaemon, install_fuse_dac
from repro.defenses.intent_detection import IntentDetectionScheme
from repro.defenses.intent_origin import IntentOriginScheme

__all__ = [
    "Dapp",
    "DappRescan",
    "HardenedFuseDaemon",
    "install_fuse_dac",
    "IntentDetectionScheme",
    "IntentOriginScheme",
]
