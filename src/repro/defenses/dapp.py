"""DAPP: the user-level defense app (Section V-B).

DAPP is an unprivileged app — distributable through Google Play — that
protects even users of insecure installers:

1. **Covering the attack window**: the moment a ``CLOSE_WRITE`` marks a
   finished APK download, DAPP grabs the APK's certificate signature.
   When the OS broadcasts ``PACKAGE_ADDED``/``PACKAGE_INSTALL`` for
   that package, DAPP compares the installed certificate against the
   grabbed one; a mismatch means the file was replaced in the window.
2. **Finding race conditions**: replacement attempts announce
   themselves on the event stream — ``MOVED_TO`` over a completed
   download, ``DELETE`` right after completion followed by a new
   ``CLOSE_WRITE``, or an ``OPEN`` + ``CLOSE_WRITE`` rewrite.  Any
   write shortly after download completion is flagged.

DAPP runs with ``startForeground`` so a malicious app holding
``KILL_BACKGROUND_PROCESSES`` cannot terminate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AccessDenied, FilesystemError
from repro.android.apk import Apk, MalformedApk
from repro.android.app import App
from repro.android.fileobserver import FileObserver
from repro.android.filesystem import FileEvent, FileEventType
from repro.android.pms import (
    ACTION_PACKAGE_ADDED,
    ACTION_PACKAGE_INSTALL,
    ACTION_PACKAGE_REPLACED,
    PackageBroadcast,
)
from repro.core.outcomes import DefenseReport
from repro.sim.clock import seconds

DAPP_PACKAGE = "org.gia.dapp"

# "DAPP considers any CLOSE_WRITE that happens shortly after target_apk
# download completion to be suspicious."
DEFAULT_SUSPICION_WINDOW_NS = seconds(10)


@dataclass
class _GrabbedSignature:
    """What DAPP recorded about one downloaded APK."""

    path: str
    package: str
    certificate_fingerprint: str
    grabbed_ns: int


class Dapp(App):
    """The user-level protection app."""

    package = DAPP_PACKAGE

    def __init__(self, watch_dirs: Optional[List[str]] = None,
                 suspicion_window_ns: int = DEFAULT_SUSPICION_WINDOW_NS) -> None:
        super().__init__()
        self.watch_dirs = list(watch_dirs or [])
        self.suspicion_window_ns = suspicion_window_ns
        self.foreground_service = False
        self._observers: List[FileObserver] = []
        self._grabbed: Dict[str, _GrabbedSignature] = {}   # by package name
        self._download_done_ns: Dict[str, int] = {}        # by path
        # Paths whose staged APK was consumed by a completed install:
        # later housekeeping (the store deleting or re-downloading the
        # stage for an update) is not suspicious.
        self._consumed_paths: set = set()
        self.report = DefenseReport(defense_name="DAPP")
        self._suppressed = False

    # -- lifecycle --------------------------------------------------------------

    def on_attached(self) -> None:
        self.start_foreground()
        for directory in self.watch_dirs:
            self.watch(directory)
        for action in (ACTION_PACKAGE_ADDED, ACTION_PACKAGE_REPLACED,
                       ACTION_PACKAGE_INSTALL):
            self.system.hub.subscribe(f"broadcast:{action}", self._on_package_event)

    def start_foreground(self) -> None:
        """startForeground(): pins DAPP against background killing."""
        self.foreground_service = True

    def on_background_killed(self) -> None:
        """Process death: every observer dies with it.

        Only reachable when ``foreground_service`` is off — the AMS
        refuses to kill foreground services, which is why DAPP calls
        ``startForeground`` the moment it attaches.
        """
        for observer in self._observers:
            observer.stop_watching()

    def watch(self, directory: str) -> None:
        """Add a staging directory to the watch set."""
        if not self.system.fs.exists(directory):
            # The installer may create it later; watch from creation.
            self.system.fs.makedirs(directory, self.system.system_caller)
        observer = self.file_observer(directory)
        observer.on_event(self._on_file_event)
        observer.start_watching()
        self._observers.append(observer)

    # -- the situation-awareness module ------------------------------------------

    def _on_file_event(self, event: FileEvent) -> None:
        if not event.name.endswith(".apk"):
            return
        path = event.path
        if event.event_type is FileEventType.CLOSE_WRITE:
            if path in self._consumed_paths:
                # A fresh download over an already-installed stage
                # (an update): start a new observation cycle.
                self._consumed_paths.discard(path)
                self._download_done_ns[path] = event.time_ns
                self._grab_signature(path, event.time_ns, replaces=False)
                return
            if path in self._download_done_ns:
                self._flag(
                    f"CLOSE_WRITE on {path} "
                    f"{(event.time_ns - self._download_done_ns[path]) / 1e6:.0f} ms "
                    "after download completion (possible replacement)"
                )
                self._grab_signature(path, event.time_ns, replaces=True)
            else:
                # First CLOSE_WRITE on this path: the download finished.
                self._download_done_ns[path] = event.time_ns
                self._grab_signature(path, event.time_ns, replaces=False)
        elif event.event_type is FileEventType.MOVED_TO:
            if path in self._download_done_ns:
                self._flag(f"MOVED_TO replaced completed download {path}")
                self._grab_signature(path, event.time_ns, replaces=True)
            else:
                # Xiaomi-style tmp-name rename: treat as completion.
                self._download_done_ns[path] = event.time_ns
                self._grab_signature(path, event.time_ns, replaces=False)
        elif event.event_type is FileEventType.DELETE:
            done = self._download_done_ns.pop(path, None)
            if path in self._consumed_paths:
                # The package installed from this stage already; the
                # store cleaning up (or re-downloading for an update)
                # is routine.
                return
            if done is not None and event.time_ns - done < self.suspicion_window_ns:
                self._flag(
                    f"DELETE of {path} shortly after download completion"
                )

    def _grab_signature(self, path: str, when_ns: int, replaces: bool) -> None:
        try:
            data = self.system.fs.read_bytes(path, self.caller, quiet=True)
            apk = Apk.from_bytes(data)
        except (AccessDenied, FilesystemError, MalformedApk):
            return
        if replaces and apk.package in self._grabbed:
            # Keep the signature grabbed at the original completion: the
            # later writer is exactly who we distrust.
            return
        self._grabbed[apk.package] = _GrabbedSignature(
            path=path,
            package=apk.package,
            certificate_fingerprint=apk.certificate.fingerprint,
            grabbed_ns=when_ns,
        )

    # -- install-time verification -----------------------------------------------------

    def _on_package_event(self, broadcast: PackageBroadcast) -> None:
        grabbed = self._grabbed.get(broadcast.package)
        if grabbed is None:
            return
        installed = self.system.pms.get_package(broadcast.package)
        if installed is None:
            return
        self._consumed_paths.add(grabbed.path)
        if installed.certificate.fingerprint != grabbed.certificate_fingerprint:
            self._flag(
                f"installed certificate of {broadcast.package} differs from the "
                "one grabbed at download time: replacement attack"
            )

    def suppress_reactions(self) -> None:
        """Test-only: go blind — watch everything, alarm on nothing.

        Exists for the fuzz completeness oracle, which must prove it
        notices a defense that silently stopped working.
        """
        self._suppressed = True

    def _flag(self, message: str) -> None:
        if self._suppressed:
            return
        self.report.alarms.append(message)
        obs = self.system.obs
        if obs.enabled:
            obs.event("defense/alarm", self.system.now_ns,
                      defense=self.report.defense_name, reason=message)

    # -- introspection ---------------------------------------------------------------------

    @property
    def detected(self) -> bool:
        """True once DAPP has raised any alarm."""
        return self.report.detected

    def grabbed_packages(self) -> List[str]:
        """Packages whose download signature DAPP holds."""
        return sorted(self._grabbed)
