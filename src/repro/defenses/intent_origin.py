"""Intent-origin identification (Section V-C).

The root cause of the redirect-Intent threat is that a recipient cannot
learn who sent an Intent.  The scheme adds a hidden ``mIntentOrigin``
field to :class:`~repro.android.intents.Intent`; when an Intent passes
through the (modified) IntentFirewall, ``checkIntent`` calls the hidden
``setIntentOrigin`` API with the sender's package name, and the
recipient can inspect it with ``getIntentOrigin`` — e.g. an appstore can
show the user *which app* redirected them here.
"""

from __future__ import annotations

from typing import List

from repro.android.intent_firewall import (
    InspectionResult,
    IntentFirewall,
    IntentRecord,
)
from repro.core.outcomes import DefenseReport
from repro.obs.trace import NULL_RECORDER


class IntentOriginScheme:
    """Stamps sender identity into every activity Intent."""

    def __init__(self) -> None:
        self.report = DefenseReport(defense_name="Intent-Origin")
        self.stamped: List[str] = []
        self._obs = NULL_RECORDER
        self._suppressed = False

    def suppress_reactions(self) -> None:
        """Test-only: stop stamping sender identities into Intents.

        Exists for the fuzz completeness oracle, which must prove it
        notices a defense that silently stopped working.
        """
        self._suppressed = True

    def install(self, firewall: IntentFirewall) -> "IntentOriginScheme":
        """Register with ``firewall``; returns self for chaining."""
        firewall.add_inspector(self.inspect)
        return self

    def bind_observability(self, recorder) -> None:
        """Route stamping decisions to ``recorder``."""
        self._obs = recorder

    def inspect(self, record: IntentRecord) -> InspectionResult:
        """The setIntentOrigin call inside checkIntent."""
        if self._suppressed:
            return InspectionResult()
        record.intent.set_intent_origin(record.sender_package)
        self.stamped.append(record.sender_package)
        if self._obs.enabled:
            self._obs.event(
                "defense/stamp", record.delivery_time_ns,
                defense=self.report.defense_name,
                sender=record.sender_package,
                recipient=record.recipient_package)
        return InspectionResult()
