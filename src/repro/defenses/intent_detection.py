"""Redirect-Intent detection in the IntentFirewall (Section V-C).

For every Intent sent through ``startActivity`` the scheme keeps an
``intentRecord`` (recipient package, delivery time, sender UID) in a
hash map keyed by recipient — only the last Intent per recipient is
preserved.  When two consecutive Intents reach the same recipient less
than a threshold (1 second in the paper) apart, the event is reported
to the user as a possible attack, **unless**

1. both come from the same app (package or shared UID), or
2. sender and receiver are the same app, or
3. the sender is a system app or service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.android.intent_firewall import (
    InspectionResult,
    IntentFirewall,
    IntentRecord,
)
from repro.core.outcomes import DefenseReport
from repro.obs.trace import NULL_RECORDER
from repro.sim.clock import seconds

DEFAULT_THRESHOLD_NS = seconds(1)


class IntentDetectionScheme:
    """The consecutive-Intent detector."""

    def __init__(self, threshold_ns: int = DEFAULT_THRESHOLD_NS,
                 block_on_alarm: bool = False) -> None:
        self.threshold_ns = threshold_ns
        # The paper's scheme reports; blocking is an ablation knob.
        self.block_on_alarm = block_on_alarm
        self._last_by_recipient: Dict[str, IntentRecord] = {}
        self.report = DefenseReport(defense_name="Intent-Detection")
        self._obs = NULL_RECORDER
        self._suppressed = False

    def suppress_reactions(self) -> None:
        """Test-only: keep recording Intents but never alarm or block.

        Exists for the fuzz completeness oracle, which must prove it
        notices a defense that silently stopped working.
        """
        self._suppressed = True

    def install(self, firewall: IntentFirewall) -> "IntentDetectionScheme":
        """Register with ``firewall``; returns self for chaining."""
        firewall.add_inspector(self.inspect)
        return self

    def bind_observability(self, recorder) -> None:
        """Route alarm/block decisions to ``recorder``."""
        self._obs = recorder

    def inspect(self, record: IntentRecord) -> InspectionResult:
        """The logic run inside IntentFirewall.checkIntent."""
        previous = self._last_by_recipient.get(record.recipient_package)
        self._last_by_recipient[record.recipient_package] = record
        if previous is None:
            return InspectionResult()
        interval = record.delivery_time_ns - previous.delivery_time_ns
        if interval >= self.threshold_ns:
            return InspectionResult()
        if self._whitelisted(previous, record):
            return InspectionResult()
        if self._suppressed:
            return InspectionResult()
        alarm = (
            f"possible redirect-Intent attack on {record.recipient_package}: "
            f"{record.sender_package} replaced {previous.sender_package}'s "
            f"Intent after {interval / 1e6:.0f} ms"
        )
        self.report.alarms.append(alarm)
        if self._obs.enabled:
            self._obs.event(
                "defense/alarm", record.delivery_time_ns,
                defense=self.report.defense_name, reason=alarm,
                blocked=self.block_on_alarm)
        if self.block_on_alarm:
            self.report.blocked_operations.append(alarm)
            return InspectionResult(allow=False, alarm=alarm)
        return InspectionResult(alarm=alarm)

    def _whitelisted(self, previous: IntentRecord, record: IntentRecord) -> bool:
        if (record.sender_package == previous.sender_package
                or record.sender_uid == previous.sender_uid):
            return True  # rule 1: same app / shared UID
        if record.sender_package == record.recipient_package:
            return True  # rule 2: app talking to itself
        if record.sender_is_system:
            return True  # rule 3: system apps and services
        return False

    @property
    def detected(self) -> bool:
        """True once at least one suspicious pair was reported."""
        return self.report.detected
