"""The system-level FUSE DAC scheme (Section V-C).

Three coordinated changes to the external-storage FUSE daemon:

- ``derive_permissions_locked`` (here :meth:`HardenedFuseDaemon.on_create`):
  every APK created on the SD-Card gets mode **640** and is recorded in
  the *APK list* with its owner UID,
- ``check_caller_access_to_name``: because stock Android ignores DAC on
  the SD-Card, the mode alone changes nothing — this check now refuses
  writes/deletes on a listed APK by anyone but its owner (or a system
  process, so Settings can still free space),
- ``handle_rename``: path-alteration requests (move/rename of the APK
  or any ancestor directory) are vetoed when the affected subtree
  contains APKs the caller does not own — closing the bypass of
  renaming the directory out from under the protection.

The protection is kept after install, in case the APK is re-installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AccessDenied
from repro.android.filesystem import Caller, Filesystem, Inode
from repro.android.fuse import FuseDaemon
from repro.core.outcomes import DefenseReport
from repro.obs.trace import NULL_RECORDER


@dataclass(frozen=True)
class ApkListEntry:
    """One row of the APK list: owner and location of a protected APK."""

    path: str
    owner_uid: int


class HardenedFuseDaemon(FuseDaemon):
    """The patched FUSE daemon."""

    APK_MODE = 0o640

    def __init__(self) -> None:
        self.apk_list: Dict[str, ApkListEntry] = {}
        self.report = DefenseReport(defense_name="FUSE-DAC")
        self._obs = NULL_RECORDER
        self._clock = None
        self._suppressed = False

    def suppress_reactions(self) -> None:
        """Test-only: keep the APK list but stop enforcing it.

        Exists for the fuzz completeness oracle, which must prove it
        notices a defense that silently stopped working.
        """
        self._suppressed = True

    def bind_observability(self, recorder, clock=None) -> None:
        """Route block decisions to ``recorder`` (timed via ``clock``)."""
        self._obs = recorder
        self._clock = clock

    # -- derive_permissions_locked ------------------------------------------------

    def on_create(self, fs: Filesystem, caller: Caller, path: str, inode: Inode) -> None:
        if self._is_apk(path):
            inode.mode = self.APK_MODE
            # A recreate after an owner delete re-registers ownership.
            self.apk_list[path] = ApkListEntry(path=path, owner_uid=caller.uid)
        else:
            super().on_create(fs, caller, path, inode)

    # -- check_caller_access_to_name ------------------------------------------------

    def check_caller_access_to_name(self, fs: Filesystem, caller: Caller,
                                    path: str, inode: Optional[Inode]) -> None:
        entry = self.apk_list.get(path)
        if entry is None:
            if self._is_apk(path) and inode is not None:
                # An APK that predates the defense: adopt it with its
                # current owner so it is protected from now on.
                entry = ApkListEntry(path=path, owner_uid=inode.owner_uid)
                self.apk_list[path] = entry
            else:
                return
        if caller.is_system or caller.uid == entry.owner_uid:
            return
        if self._suppressed:
            return
        self._block(f"write to protected APK {path} by uid {caller.uid}")
        raise AccessDenied(path, "APK is write-protected (owner-only)")

    # -- handle_rename ------------------------------------------------------------------

    def handle_rename(self, fs: Filesystem, caller: Caller, src: str, dst: str) -> None:
        if caller.is_system or self._suppressed:
            return
        self._adopt_existing(fs, dst)
        for affected in (src, dst):
            for entry in self._entries_under(affected):
                if entry.owner_uid != caller.uid:
                    self._block(
                        f"rename {src} -> {dst} touches protected APK "
                        f"{entry.path} (owner uid {entry.owner_uid})"
                    )
                    raise AccessDenied(
                        affected, "path alteration touches a protected APK"
                    )
        # The owner moving a file into an .apk name keeps the list
        # coherent: the destination is protected from now on, whether or
        # not the source was tracked (e.g. a .tmp download being renamed
        # to its official name, the Xiaomi pattern).
        moved = self.apk_list.pop(src, None)
        if self._is_apk(dst):
            owner_uid = moved.owner_uid if moved is not None else caller.uid
            self.apk_list[dst] = ApkListEntry(path=dst, owner_uid=owner_uid)

    def _adopt_existing(self, fs: Filesystem, path: str) -> None:
        """Track an already-present APK at ``path`` by its inode owner."""
        if not self._is_apk(path) or path in self.apk_list:
            return
        try:
            stat = fs.stat(path)
        except Exception:
            return
        self.apk_list[path] = ApkListEntry(path=path, owner_uid=stat.owner_uid)

    # -- deletes keep the list coherent too ------------------------------------------------

    def check_delete(self, fs: Filesystem, caller: Caller, path: str,
                     inode: Optional[Inode]) -> None:
        super().check_delete(fs, caller, path, inode)
        # Reaching here means the delete is allowed (owner or system).
        self.apk_list.pop(path, None)

    # -- helpers -----------------------------------------------------------------------------

    @staticmethod
    def _is_apk(path: str) -> bool:
        return path.endswith(".apk")

    def _entries_under(self, path: str) -> List[ApkListEntry]:
        prefix = path.rstrip("/") + "/"
        return [
            entry
            for entry_path, entry in self.apk_list.items()
            if entry_path == path or entry_path.startswith(prefix)
        ]

    def _block(self, message: str) -> None:
        self.report.blocked_operations.append(message)
        if self._obs.enabled:
            when_ns = self._clock.now_ns if self._clock is not None else 0
            self._obs.event("defense/block", when_ns,
                            defense=self.report.defense_name, reason=message)


def install_fuse_dac(system: "object") -> HardenedFuseDaemon:
    """Swap the stock FUSE daemon on ``system`` for the hardened one.

    Returns the daemon so callers can read its report and APK list.
    """
    daemon = HardenedFuseDaemon()
    daemon.bind_observability(system.obs, system.kernel.clock)
    system.fs.set_policy(system.layout.external_root, daemon)
    system.fuse_daemon = daemon
    return daemon
