"""DAPP-RESCAN: hybrid online-notify + offline-rescan protection.

Plain DAPP trusts its FileObserver stream completely — and a bounded
notification queue makes that trust exploitable: a ``watcher-flood``
attacker overflows the queue so the ``CLOSE_WRITE`` marking download
completion (DAPP's cue to grab the genuine certificate) is simply
never delivered, and the swap's ``MOVED_TO`` drops into the same hole.

The change-detection literature's answer is the hybrid design: stay on
the cheap notification path while it is healthy, and fall back to
periodic *offline rescans* of the watched directories the moment the
queue reports loss (``Q_OVERFLOW``).  A rescan cannot see individual
events, but it can do something better: read the staged APKs directly
and reconcile them against the grabbed-signature table —

* a complete APK with no grabbed signature means a download finished
  inside a dropped window, so grab its certificate now;
* a staged APK whose certificate no longer matches the grabbed one
  means the file was replaced while the watcher was blind — alarm.

The detection guarantee is timing-based: every modeled installer waits
at least half its install delay (>= 50 ms across all profiles) between
download completion and the PMS read, while the degraded mode rescans
every :data:`DEFAULT_RESCAN_INTERVAL_NS` (25 ms).  The attacker must
leave the genuine APK intact until the store's integrity check passes,
so some rescan always captures the genuine certificate before the
swap — and then the ordinary install-time comparison convicts the
replacement.  The fuzz completeness oracle enforces exactly this:
``dapp-rescan`` must detect every hijack under ``watcher-flood``,
where plain ``dapp`` is expected to go blind.
"""

from __future__ import annotations

import posixpath
from typing import List, Optional

from repro.errors import AccessDenied, FilesystemError
from repro.android.apk import Apk, MalformedApk
from repro.android.filesystem import FileEvent, FileEventType
from repro.defenses.dapp import (
    DEFAULT_SUSPICION_WINDOW_NS,
    Dapp,
    _GrabbedSignature,
)
from repro.sim.clock import millis, seconds

#: Degraded-mode rescan cadence.  Must undercut the smallest
#: completion-to-swap window any installer profile forces on the
#: attacker (install_delay/2 >= 50 ms); 25 ms leaves 2x margin.
DEFAULT_RESCAN_INTERVAL_NS = millis(25)

#: How long one overflow keeps the offline scanner running.  Matches
#: the scenario's attacker arm budget: if the queue overflowed once
#: during an install, every later phase of that install is rescanned.
DEFAULT_RESCAN_WINDOW_NS = seconds(60)


class DappRescan(Dapp):
    """DAPP plus overflow-triggered offline rescans (hybrid detection)."""

    def __init__(self, watch_dirs: Optional[List[str]] = None,
                 suspicion_window_ns: int = DEFAULT_SUSPICION_WINDOW_NS,
                 rescan_interval_ns: int = DEFAULT_RESCAN_INTERVAL_NS,
                 rescan_window_ns: int = DEFAULT_RESCAN_WINDOW_NS) -> None:
        super().__init__(watch_dirs, suspicion_window_ns)
        self.report.defense_name = "DAPP-RESCAN"
        self.rescan_interval_ns = rescan_interval_ns
        self.rescan_window_ns = rescan_window_ns
        #: ``Q_OVERFLOW`` signals received (loss episodes noticed).
        self.overflows_seen = 0
        #: Offline rescans performed in degraded mode.
        self.rescans = 0
        self._rescan_deadline_ns = 0
        self._rescan_running = False

    # -- the notify path, plus the overflow trigger ------------------------------------

    def _on_file_event(self, event: FileEvent) -> None:
        if event.event_type is FileEventType.Q_OVERFLOW:
            self._on_overflow(event)
            return
        super()._on_file_event(event)

    def _on_overflow(self, event: FileEvent) -> None:
        """Events were lost: the stream is no longer trustworthy."""
        self.overflows_seen += 1
        metrics = self.system.metrics
        if metrics is not None:
            metrics.counter("dapp/overflows").inc()
        obs = self.system.obs
        if obs.enabled:
            obs.event("defense/rescan_mode", event.time_ns,
                      defense=self.report.defense_name,
                      directory=event.directory,
                      overflows=self.overflows_seen)
        self._rescan_deadline_ns = self.system.now_ns + self.rescan_window_ns
        self._rescan()  # catch up immediately on whatever was missed
        if not self._rescan_running:
            self._rescan_running = True
            # A timer chain, not a spawned process: rescan mode starts
            # mid-run and a kernel/process span opening at overflow time
            # would partially overlap sibling spans in the trace.
            self.system.kernel.call_later(self.rescan_interval_ns,
                                          self._rescan_tick)

    # -- the offline path --------------------------------------------------------------

    def _rescan_tick(self) -> None:
        if self.system.now_ns >= self._rescan_deadline_ns:
            self._rescan_running = False
            return
        self._rescan()
        self.system.kernel.call_later(self.rescan_interval_ns,
                                      self._rescan_tick)

    def _rescan(self) -> None:
        """Reconcile the staged APKs on disk with the grabbed table."""
        self.rescans += 1
        now_ns = self.system.now_ns
        for directory in self.watch_dirs:
            try:
                names = self.system.fs.listdir(directory)
            except (AccessDenied, FilesystemError):
                continue
            for name in sorted(names):
                if not name.endswith(".apk"):
                    continue
                self._reconcile(posixpath.join(directory, name), now_ns)

    def _reconcile(self, path: str, now_ns: int) -> None:
        try:
            data = self.system.fs.read_bytes(path, self.caller, quiet=True)
            apk = Apk.from_bytes(data)
        except (AccessDenied, FilesystemError, MalformedApk):
            return  # partial download or unreadable: next rescan retries
        grabbed = self._grabbed.get(apk.package)
        if grabbed is None:
            # The completion event for this download was dropped.
            self._download_done_ns.setdefault(path, now_ns)
            self._grabbed[apk.package] = _GrabbedSignature(
                path=path,
                package=apk.package,
                certificate_fingerprint=apk.certificate.fingerprint,
                grabbed_ns=now_ns,
            )
        elif (path not in self._consumed_paths
              and apk.certificate.fingerprint != grabbed.certificate_fingerprint):
            self._flag(
                f"rescan after Q_OVERFLOW: {path} was re-signed while the "
                "watcher was blind (replacement attack)"
            )
