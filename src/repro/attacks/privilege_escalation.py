"""Privilege escalation via deliberately installed vulnerable system apps
(Section III-B, "Privilege escalation").

Because each vendor signs *every* system app with one platform key
(Section IV-B), an attacker who can silently install apps (via any GIA)
can plant a **vulnerable platform-signed app** — the paper used an old
TeamViewer exploited with the Certifi-gate technique — and then drive
its unauthenticated command interface to act with ``signatureOrSystem``
privileges.
"""

from __future__ import annotations

from typing import List

from repro.android.apk import Apk, ApkBuilder
from repro.android.app import App
from repro.android.intents import Intent
from repro.android.permissions import INSTALL_PACKAGES, DELETE_PACKAGES
from repro.android.signing import SigningKey
from repro.attacks.base import MaliciousApp
from repro.core.ait import AITStep
from repro.core.outcomes import AttackResult

VULNERABLE_APP_PACKAGE = "com.teamviewer.quicksupport.market"
TV_COMMAND_EXTRA = "tv_command"


def build_vulnerable_apk(platform_key: SigningKey, version_code: int = 1) -> Apk:
    """The vulnerable remote-support app, signed with the platform key.

    It requests ``INSTALL_PACKAGES``/``DELETE_PACKAGES`` —
    ``signatureOrSystem``, granted because the signature matches the
    platform certificate even when the app is *not* pre-installed.
    """
    return (
        ApkBuilder(VULNERABLE_APP_PACKAGE)
        .label("QuickSupport")
        .version(version_code)
        .uses_permission(INSTALL_PACKAGES, DELETE_PACKAGES)
        .payload(b"<remote support code with certifi-gate hole>")
        .build(platform_key)
    )


class VulnerableSystemApp(App):
    """Runtime behaviour of the planted app: an unauthenticated
    command interface (the Certifi-gate-class flaw)."""

    package = VULNERABLE_APP_PACKAGE

    def __init__(self) -> None:
        super().__init__()
        self.executed: List[dict] = []

    def handle_intent(self, intent: Intent) -> None:
        command = intent.extras.get(TV_COMMAND_EXTRA)
        if not isinstance(command, dict):
            return
        # The flaw: no caller authentication before acting with
        # signatureOrSystem privileges.
        self.executed.append(command)
        operation = command.get("op")
        if operation == "install":
            self.system.pms.install_package(
                command.get("path", ""), self.caller,
                installer_package=self.package,
            )
        elif operation == "uninstall":
            self.system.pms.uninstall_package(command.get("package", ""), self.caller)


class VulnerableSystemAppAttacker(MaliciousApp):
    """Drives the planted vulnerable app to install arbitrary packages."""

    def exploit_install(self, staged_apk_path: str) -> bool:
        """Have the vulnerable app silently install the staged APK."""
        intent = Intent(
            target_package=VULNERABLE_APP_PACKAGE,
            target_activity="RemoteCommandActivity",
        ).with_extra(TV_COMMAND_EXTRA, {"op": "install", "path": staged_apk_path})
        return self.start_activity(intent)

    def exploit_uninstall(self, package: str) -> bool:
        """Have the vulnerable app silently remove ``package``."""
        intent = Intent(
            target_package=VULNERABLE_APP_PACKAGE,
            target_activity="RemoteCommandActivity",
        ).with_extra(TV_COMMAND_EXTRA, {"op": "uninstall", "package": package})
        return self.start_activity(intent)

    def result(self, payload_package: str) -> AttackResult:
        """Did the second-stage payload land with system help?"""
        installed = self.system.pms.get_package(payload_package)
        return AttackResult(
            attack_name="vulnerable-system-app",
            ait_step=AITStep.INSTALL,
            succeeded=installed is not None
            and installed.installer_package == VULNERABLE_APP_PACKAGE,
            detail={"payload": payload_package},
        )
