"""The Download Manager symlink TOCTOU — AIT Step 2 (Section III-C).

The attacker asks the DM to download an innocuous file to a *symbolic
link* that points somewhere authorized (its own SD-Card directory).
Once the security check has passed, the link is re-pointed at a path
only the DM can touch — another app's internal files, or the DM's own
database.  ``retrieve`` then leaks the target's bytes, and ``remove``
deletes it (the paper's Google-Play denial of service).

Both firmware behaviours are attacked:

- Android 4.4 (``SymlinkMode.LEXICAL``): one re-point after the
  download suffices,
- Android 6.0 (``SymlinkMode.CHECK_THEN_USE``): the DM re-checks the
  physical path per request, so the attacker runs a link-flipping
  process and retries until a flip lands inside the check-to-use gap.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.errors import DownloadDestinationError, DownloadError
from repro.android.download_manager import CHECK_TO_USE_GAP_NS, SymlinkMode
from repro.attacks.base import MaliciousApp
from repro.core.ait import AITStep
from repro.core.outcomes import AttackResult
from repro.sim.kernel import Sleep, SimEvent, WaitFor

_PAD_URL = "http://cdn.fun-flashlight.example/pad.bin"
_PAD_CONTENT = b"<innocuous padding file>"

MAX_RACE_ATTEMPTS = 12


@dataclass
class SymlinkLoot:
    """What one symlink attack run obtained."""

    target_path: str
    leaked: Optional[bytes] = None
    deleted: bool = False
    attempts: int = 0


class DMSymlinkAttacker(MaliciousApp):
    """The Step-2 attacker. Needs no permission at all for the DM calls."""

    def __init__(self, package: Optional[str] = None) -> None:
        super().__init__(package=package)
        self.loot: List[SymlinkLoot] = []

    @property
    def work_dir(self) -> str:
        """The attacker's own staging corner of the SD-Card."""
        return "/sdcard/.dl-fun-flashlight"

    # -- attack entry points ------------------------------------------------------

    def steal_file(self, target_path: str) -> Generator[object, object, SymlinkLoot]:
        """Leak the contents of ``target_path`` through the DM's privilege."""
        loot = SymlinkLoot(target_path=target_path)
        link_path, download_id, decoy_path = yield from self._prime(loot)
        mode = self.system.dm.symlink_mode
        if mode is SymlinkMode.LEXICAL:
            # 4.4: the check only ever saw the lexical path; re-point once.
            self.system.fs.retarget_symlink(link_path, target_path, self.caller)
            loot.attempts = 1
            loot.leaked = yield from self.system.dm.retrieve(self.caller, download_id)
        else:
            loot.leaked = yield from self._race_retrieve(
                loot, link_path, download_id, decoy_path, target_path
            )
        self.loot.append(loot)
        return loot

    def delete_file(self, target_path: str) -> Generator[object, object, SymlinkLoot]:
        """Delete ``target_path`` through the DM (e.g. its own database)."""
        loot = SymlinkLoot(target_path=target_path)
        link_path, download_id, decoy_path = yield from self._prime(loot)
        mode = self.system.dm.symlink_mode
        if mode is SymlinkMode.LEXICAL:
            self.system.fs.retarget_symlink(link_path, target_path, self.caller)
            loot.attempts = 1
            _path, unlinked = yield from self.system.dm.remove(self.caller, download_id)
            loot.deleted = unlinked
        else:
            yield from self._race_remove(
                loot, link_path, download_id, decoy_path, target_path
            )
        self.loot.append(loot)
        return loot

    def result(self, loot: SymlinkLoot) -> AttackResult:
        """Wrap a loot record as a reportable attack result."""
        succeeded = loot.deleted or (
            loot.leaked is not None and loot.leaked != _PAD_CONTENT
        )
        return AttackResult(
            attack_name="dm-symlink-toctou",
            ait_step=AITStep.DOWNLOAD,
            succeeded=succeeded,
            detail={
                "target": loot.target_path,
                "attempts": loot.attempts,
                "mode": self.system.dm.symlink_mode.value,
            },
        )

    # -- plumbing ----------------------------------------------------------------------

    def _prime(self, loot: SymlinkLoot):
        """Host a pad file, download it through a symlink, await completion."""
        if not self.system.network.exists(_PAD_URL):
            self.system.network.host(_PAD_URL, _PAD_CONTENT)
        if not self.system.fs.exists(self.work_dir):
            self.make_dirs(self.work_dir)
        token = self.system.rng.token(8)
        decoy_path = posixpath.join(self.work_dir, f"decoy-{token}.bin")
        link_path = posixpath.join(self.work_dir, f"link-{token}")
        self.system.fs.symlink(link_path, decoy_path, self.caller)
        download_id = self.enqueue_download(_PAD_URL, link_path)
        done = SimEvent(name=f"dm-attack-{download_id}")
        subscription = self.system.hub.subscribe(
            self.system.dm.completion_topic(download_id),
            lambda record: done.trigger(record),
        )
        yield WaitFor(done)
        subscription.cancel()
        return link_path, download_id, decoy_path

    def _race_retrieve(self, loot: SymlinkLoot, link_path: str, download_id: int,
                       decoy_path: str, target_path: str):
        """6.0 mode: flip the link mid-gap until a read leaks the target."""
        for attempt in range(1, MAX_RACE_ATTEMPTS + 1):
            loot.attempts = attempt
            leaked = yield from self._one_race(
                link_path, decoy_path, target_path, attempt,
                lambda: self.system.dm.retrieve(self.caller, download_id),
            )
            if leaked is not None and leaked != _PAD_CONTENT:
                return leaked
        return None

    def _race_remove(self, loot: SymlinkLoot, link_path: str, download_id: int,
                     decoy_path: str, target_path: str):
        for attempt in range(1, MAX_RACE_ATTEMPTS + 1):
            loot.attempts = attempt
            outcome = yield from self._one_race(
                link_path, decoy_path, target_path, attempt,
                lambda: self.system.dm.remove(self.caller, download_id),
            )
            if outcome is None:
                continue  # flip landed before the check; record survived
            deleted_path, unlinked = outcome
            loot.deleted = unlinked and deleted_path == target_path
            return  # remove consumed the record either way: one shot

    def _one_race(self, link_path: str, decoy_path: str, target_path: str,
                  attempt: int, operation):
        """Point the link at the decoy, schedule a mid-gap flip, operate."""
        self.system.fs.retarget_symlink(link_path, decoy_path, self.caller)
        flip_delay = (attempt * CHECK_TO_USE_GAP_NS // 4) % (CHECK_TO_USE_GAP_NS + 50_000)
        self.system.kernel.call_later(
            flip_delay,
            lambda: self.system.fs.retarget_symlink(
                link_path, target_path, self.caller
            ),
        )
        try:
            result = yield from operation()
        except (DownloadDestinationError, DownloadError):
            # The flip landed before the check: caught red-handed, retry.
            yield Sleep(CHECK_TO_USE_GAP_NS * 2)
            return None
        return result if result is not None else b""
