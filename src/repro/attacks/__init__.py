"""Ghost Installer Attacks (GIA) — Section III of the paper.

One module per attack family, each tagged with the AIT step it breaks:

- :mod:`repro.attacks.toctou` — FileObserver-driven installation
  hijacking (Step 3),
- :mod:`repro.attacks.wait_and_see` — the timing-only variant that
  needs no FileObserver (Step 3),
- :mod:`repro.attacks.watcher_flood` — the wait-and-see strike behind
  an event flood that overflows the defender's bounded watch queue
  (Step 3, only effective on devices with lossy watchers),
- :mod:`repro.attacks.dm_symlink` — the Download Manager symlink
  TOCTOU (Step 2),
- :mod:`repro.attacks.redirect_intent` — UI redirection through the
  ``oom_adj`` side channel (Step 1),
- :mod:`repro.attacks.command_injection` — Amazon JS-bridge and Xiaomi
  push-receiver abuse (Step 1),
- :mod:`repro.attacks.privilege_escalation` /
  :mod:`repro.attacks.hare` — what silent installs buy the attacker
  (vulnerable platform-signed apps, Hare permissions).
"""

from repro.attacks.base import ATTACKER_PACKAGE, MaliciousApp, StoreFingerprint
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.attacks.watcher_flood import WatcherFloodHijacker
from repro.attacks.dm_symlink import DMSymlinkAttacker
from repro.attacks.redirect_intent import RedirectIntentAttacker
from repro.attacks.command_injection import (
    AmazonJsInjectionAttacker,
    XiaomiPushForgeryAttacker,
)
from repro.attacks.privilege_escalation import (
    VulnerableSystemApp,
    VulnerableSystemAppAttacker,
)
from repro.attacks.hare import HareAttacker, HareCreatingSystemApp
from repro.attacks.logcat_baseline import LogcatConsentReplacer

__all__ = [
    "ATTACKER_PACKAGE",
    "MaliciousApp",
    "StoreFingerprint",
    "FileObserverHijacker",
    "WaitAndSeeHijacker",
    "WatcherFloodHijacker",
    "DMSymlinkAttacker",
    "RedirectIntentAttacker",
    "AmazonJsInjectionAttacker",
    "XiaomiPushForgeryAttacker",
    "VulnerableSystemApp",
    "VulnerableSystemAppAttacker",
    "HareAttacker",
    "HareCreatingSystemApp",
    "LogcatConsentReplacer",
]
