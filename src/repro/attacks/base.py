"""Common attacker machinery: the malicious app and store fingerprints.

The adversary model is the paper's (Section III-A): a malicious app on
the device whose only sensitive privilege is SD-Card access — and even
that can be acquired *silently* thanks to the STORAGE permission-group
auto-grant (:meth:`MaliciousApp.acquire_sdcard_permission_silently`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.android.apk import Apk, ApkBuilder, repackage
from repro.android.app import App
from repro.android.permissions import (
    READ_EXTERNAL_STORAGE,
    WRITE_EXTERNAL_STORAGE,
)
from repro.android.signing import SigningKey
from repro.sim.clock import millis

ATTACKER_PACKAGE = "com.fun.flashlight"
ATTACKER_PAYLOAD = b"<GIA malicious payload>"


@dataclass(frozen=True)
class StoreFingerprint:
    """What the attacker learned by pre-analyzing one installer.

    - ``close_nowrite_count``: how many ``CLOSE_NOWRITE`` events the
      store's integrity check produces after the download completes
      (7 for Amazon, 1 for Xiaomi, 2 for Baidu, 3 for Qihoo360);
      **0** means the store performs no check at all and the swap
      should happen the instant the download lands,
    - ``wait_and_see_delay_ns``: how long after download completion the
      timing-only attacker should replace the file (500 ms for
      Amazon/Baidu, 2 s for DTIgnite),
    - ``rename_signals_completion``: Xiaomi's tmp-name rename cue.
    """

    watch_dir: str
    close_nowrite_count: int
    wait_and_see_delay_ns: int = millis(500)
    rename_signals_completion: bool = False


def fingerprint_for(installer_cls: type) -> StoreFingerprint:
    """Derive the attack fingerprint from an installer's profile.

    Stands in for the paper's "analyze the target appstore beforehand,
    figuring out its access pattern": the profile *is* the published
    behaviour, and the fingerprint reads only attacker-observable
    fields (directory, read count, timing).
    """
    profile = installer_cls.profile
    check_ends_ns = (
        profile.verify_start_delay_ns
        + max(0, profile.verify_reads - 1) * profile.per_read_ns
    )
    window_middle = check_ends_ns + profile.install_delay_ns // 2
    if profile.verify_hash:
        count = max(1, profile.verify_reads)
    else:
        # No integrity check: strike at download completion.  (For PIA
        # stores, waiting for the dialog's read also works, but the
        # earliest reliable moment is the CLOSE_WRITE itself.)
        count = 0
    return StoreFingerprint(
        watch_dir=profile.download_dir or "/sdcard/Download",
        close_nowrite_count=count,
        wait_and_see_delay_ns=window_middle,
        rename_signals_completion=profile.rename_on_complete,
    )


class MaliciousApp(App):
    """The attacker's foothold app."""

    package = ATTACKER_PACKAGE

    def __init__(self, package: Optional[str] = None) -> None:
        super().__init__(package=package)
        self.key = SigningKey("gia-attacker", "key0")
        self._armed_ns: Optional[int] = None

    # -- observability ---------------------------------------------------------

    def note_armed(self) -> None:
        """Record the arm instant (the strike window opens here)."""
        self._armed_ns = self.system.now_ns
        obs = self.system.obs
        if obs.enabled:
            obs.event("attack/arm", self._armed_ns,
                      attack=type(self).__name__)

    def note_strike(self, path: str, blocked: bool = False,
                    reason: str = "") -> None:
        """Record a strike attempt and the arm->strike window span."""
        obs = self.system.obs
        now_ns = self.system.now_ns
        if obs.enabled:
            obs.event("attack/strike", now_ns, attack=type(self).__name__,
                      path=path, blocked=blocked, reason=reason)
            if self._armed_ns is not None:
                obs.span("attack/window", self._armed_ns, now_ns,
                         attack=type(self).__name__, path=path,
                         blocked=blocked)
        metrics = self.system.metrics
        if metrics is not None:
            metrics.counter("attack/strikes").inc()
            if blocked:
                metrics.counter("attack/strikes_blocked").inc()
            if self._armed_ns is not None:
                metrics.histogram("attack/window_ns").observe(
                    now_ns - self._armed_ns)

    @property
    def strikes_landed(self) -> int:
        """Strike attempts whose replacement actually landed."""
        return len(getattr(self, "swaps", ()))

    @property
    def strikes_blocked(self) -> int:
        """Strike attempts vetoed by a defense (or failed outright)."""
        return len(getattr(self, "blocked", ()))

    @property
    def strike_attempts(self) -> int:
        """All strike attempts, landed and blocked alike."""
        return self.strikes_landed + self.strikes_blocked

    @staticmethod
    def build_apk(package: str = ATTACKER_PACKAGE) -> Apk:
        """The attacker app's own APK: innocuous-looking, STORAGE perms."""
        key = SigningKey("gia-attacker", "key0")
        return (
            ApkBuilder(package)
            .label("Fun Flashlight")
            .uses_permission(READ_EXTERNAL_STORAGE, WRITE_EXTERNAL_STORAGE)
            .payload(b"<flashlight code>" + ATTACKER_PAYLOAD)
            .build(key)
        )

    def acquire_sdcard_permission_silently(self) -> bool:
        """The Section III-A permission-group trick.

        The user granted READ_EXTERNAL_STORAGE for a 'legitimate'
        feature; WRITE_EXTERNAL_STORAGE then arrives silently because it
        shares the STORAGE group.  Returns True if the write permission
        is held afterwards without any user dialog.
        """
        state = self.system.pms.require_package(self.package).permissions
        if not state.has(READ_EXTERNAL_STORAGE):
            state.request(READ_EXTERNAL_STORAGE, user_approves=True)
        silent = state.request_is_silent(WRITE_EXTERNAL_STORAGE)
        granted = state.request(WRITE_EXTERNAL_STORAGE, user_approves=False)
        return granted and silent

    def forge_replacement(self, genuine_bytes: bytes) -> Apk:
        """Repackage the genuine APK: same manifest, attacker payload.

        Keeping the manifest (and with it label + icon) defeats manifest
        checksums, the PIA dialog, and installPackageWithVerification.
        """
        genuine = Apk.from_bytes(genuine_bytes)
        return repackage(genuine, self.key, payload=ATTACKER_PAYLOAD)
