"""Installation hijacking without FileObserver — the "wait-and-see"
strategy of Section III-B.

If the FileObserver channel were ever closed off, the attacker can
still win: poll the staging directory, detect download completion by
the presence of the *end of central directory* record at the tail of
the file, wait a device/store-specific delay measured beforehand
(500 ms for Amazon/Baidu, 2 s for DTIgnite), then **move** a pre-staged
repackaged APK over the target.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import AccessDenied, FilesystemError
from repro.android.apk import MalformedApk, file_is_complete
from repro.attacks.base import MaliciousApp, StoreFingerprint
from repro.sim.clock import millis
from repro.sim.kernel import Sleep

DEFAULT_POLL_INTERVAL_NS = millis(50)


class WaitAndSeeHijacker(MaliciousApp):
    """The polling, timing-only Step-3 attacker."""

    def __init__(self, fingerprint: StoreFingerprint,
                 poll_interval_ns: int = DEFAULT_POLL_INTERVAL_NS,
                 package: Optional[str] = None) -> None:
        super().__init__(package=package)
        self.fingerprint = fingerprint
        self.poll_interval_ns = poll_interval_ns
        self._seen_complete: Dict[str, int] = {}
        self._pending: Dict[str, str] = {}  # target path -> staged twin
        self.swaps: List[str] = []
        self.blocked: List[Tuple[str, str]] = []

    @property
    def stash_dir(self) -> str:
        """Where the replacement APK is pre-stored."""
        return "/sdcard/.cache-fun-flashlight"

    @property
    def succeeded(self) -> bool:
        """True once at least one replacement landed."""
        return bool(self.swaps)

    def arm(self, duration_ns: int):
        """Start polling for ``duration_ns``; returns the spawned process."""
        if not self.system.fs.exists(self.stash_dir):
            self.make_dirs(self.stash_dir)
        self.note_armed()
        return self.system.kernel.spawn(
            self._poll_loop(duration_ns), name="wait-and-see-poll"
        )

    # -- the poll loop ---------------------------------------------------------------

    def _poll_loop(self, duration_ns: int) -> Generator[Sleep, None, None]:
        deadline = self.system.now_ns + duration_ns
        while self.system.now_ns < deadline:
            self._scan()
            self._fire_due()
            yield Sleep(self.poll_interval_ns)

    def _scan(self) -> None:
        directory = self.fingerprint.watch_dir
        if not self.system.fs.exists(directory):
            return
        for name in self.system.fs.listdir(directory):
            if not name.endswith(".apk"):
                continue
            path = posixpath.join(directory, name)
            if path in self._seen_complete:
                continue
            try:
                data = self.read_file(path)
            except (AccessDenied, FilesystemError):
                continue
            if not file_is_complete(data):
                continue  # EOCD not there yet: still downloading
            # First poll that sees a complete file approximates the
            # download-completion instant.
            self._seen_complete[path] = self.system.now_ns
            try:
                replacement = self.forge_replacement(data)
            except MalformedApk:
                continue
            twin_path = posixpath.join(self.stash_dir, f"{self.system.rng.token(8)}.apk")
            self.write_file(twin_path, replacement.to_bytes())
            self._pending[path] = twin_path

    def _fire_due(self) -> None:
        now = self.system.now_ns
        for path, completed_at in list(self._seen_complete.items()):
            twin = self._pending.get(path)
            if twin is None:
                continue
            if now - completed_at < self.fingerprint.wait_and_see_delay_ns:
                continue
            del self._pending[path]
            try:
                # "moving a pre-stored file to the directory"
                self.move_file(twin, path)
            except AccessDenied as exc:
                self.blocked.append((path, str(exc)))
                self.note_strike(path, blocked=True, reason=str(exc))
                continue
            except FilesystemError as exc:
                self.blocked.append((path, f"move failed: {exc}"))
                self.note_strike(path, blocked=True,
                                 reason=f"move failed: {exc}")
                continue
            self.swaps.append(path)
            self.note_strike(path)
