"""The prior-work baseline: the logcat consent-dialog attack.

PaloAltoNetworks [14 in the paper] showed, before GIA, that an attacker
could wait for the permission-consent dialog (announced on logcat) and
replace the staged APK while the user stared at it.  The paper's
Related Work points out why this baseline is much weaker than GIA:

- it needs ``READ_LOGS``, which **only works before Android 4.1**,
- it only covers the **PIA consent path** (Step 4) — silent installers
  (DTIgnite, the major stores) never show a dialog and never hit
  logcat,
- GIA's FileObserver channel needs no special permission at all and
  covers *every* SD-Card AIT.

:class:`LogcatConsentReplacer` implements the baseline faithfully so
the benchmark harness can compare coverage
(``benchmarks/test_baseline_comparison.py``).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import AccessDenied, FilesystemError, SecurityException
from repro.android.apk import MalformedApk
from repro.android.logcat import LogEntry, READ_LOGS
from repro.attacks.base import MaliciousApp

_CONSENT_RE = re.compile(r"showing consent for (\S+) from (\S+)")


class LogcatConsentReplacer(MaliciousApp):
    """The pre-GIA baseline attacker."""

    def __init__(self, package: Optional[str] = None) -> None:
        super().__init__(package=package)
        self.subscribed = False
        self.denied_reason: Optional[str] = None
        self.swaps: List[str] = []
        self.blocked: List[Tuple[str, str]] = []

    def arm(self) -> bool:
        """Try to attach to logcat; False when the channel is closed.

        The attacker requests READ_LOGS like any pre-4.1 app would; on
        newer builds the subscription itself is refused.
        """
        state = self.system.pms.require_package(self.package).permissions
        state.request(READ_LOGS, user_approves=True)
        try:
            self.system.logcat.subscribe(self.caller, self._on_log)
        except SecurityException as exc:
            self.denied_reason = str(exc)
            return False
        self.subscribed = True
        return True

    @property
    def succeeded(self) -> bool:
        """True once at least one consent-window swap landed."""
        return bool(self.swaps)

    def _on_log(self, entry: LogEntry) -> None:
        if entry.tag != "PackageInstaller":
            return
        match = _CONSENT_RE.search(entry.message)
        if match is None:
            return
        _package, staged_path = match.groups()
        self._swap(staged_path)

    def _swap(self, staged_path: str) -> None:
        try:
            genuine = self.read_file(staged_path)
            replacement = self.forge_replacement(genuine)
            self.write_file(staged_path, replacement.to_bytes())
        except AccessDenied as exc:
            self.blocked.append((staged_path, str(exc)))
            return
        except (MalformedApk, FilesystemError) as exc:
            self.blocked.append((staged_path, f"swap failed: {exc}"))
            return
        self.swaps.append(staged_path)
