"""Command injection into installer interfaces — AIT Step 1
(Section III-D, "Command injection").

Two real-world holes are reproduced:

- **Amazon**: the public ``Venezia`` activity feeds Intent extras to a
  JavaScript-Java bridge without authenticating the sender or filtering
  script, so a background app can drive Amazon's private install/
  uninstall services.  ``single_top`` keeps the existing activity alive
  so the injected state survives.
- **Xiaomi**: the cloud-push BroadcastReceiver accepts any broadcast;
  a forged ``jsonContent`` payload makes the store silently install the
  app it names.
"""

from __future__ import annotations

import json

from repro.android.intents import FLAG_ACTIVITY_SINGLE_TOP, Intent
from repro.attacks.base import MaliciousApp
from repro.core.ait import AITStep
from repro.core.outcomes import AttackResult
from repro.installers.amazon import AMAZON_PACKAGE, VENEZIA_JS_EXTRA
from repro.installers.xiaomi import XIAOMI_PUSH_ACTION


class AmazonJsInjectionAttacker(MaliciousApp):
    """Injects commands into Amazon's JS-Java bridge."""

    def inject_install(self, target_package: str) -> bool:
        """Command Amazon to silently install ``target_package``."""
        return self._inject({"op": "install", "package": target_package})

    def inject_uninstall(self, target_package: str) -> bool:
        """Command Amazon to silently uninstall ``target_package``."""
        return self._inject({"op": "uninstall", "package": target_package})

    def inject_service_call(self, service: str) -> bool:
        """Invoke one of Amazon's private services."""
        return self._inject({"op": "invokeService", "service": service})

    def result(self, target_package: str, expect_installed: bool) -> AttackResult:
        """Check whether the injected command took effect."""
        installed = self.system.pms.is_installed(target_package)
        succeeded = installed if expect_installed else not installed
        return AttackResult(
            attack_name="amazon-js-injection",
            ait_step=AITStep.INVOCATION,
            succeeded=succeeded,
            detail={"target": target_package},
        )

    def _inject(self, command: dict) -> bool:
        intent = Intent(
            target_package=AMAZON_PACKAGE,
            target_activity="com.amazon.venezia.Venezia",
            flags=FLAG_ACTIVITY_SINGLE_TOP,
        ).with_extra(VENEZIA_JS_EXTRA, json.dumps(command))
        return self.start_activity(intent)


class XiaomiPushForgeryAttacker(MaliciousApp):
    """Forges Xiaomi cloud-push broadcasts."""

    def forge_push(self, app_id: str, package_name: str) -> int:
        """Broadcast the forged payload; returns receivers reached.

        Payload shape from the paper's footnote:
        ``{"jsonContent":"{\"type\":\"app\",\"appId\":...,
        \"packageName\":...}"}``.
        """
        json_content = json.dumps(
            {"type": "app", "appId": app_id, "packageName": package_name}
        )
        return self.send_broadcast(
            XIAOMI_PUSH_ACTION, {"jsonContent": json_content}
        )

    def result(self, target_package: str) -> AttackResult:
        """Did the forged push end in a silent install?"""
        return AttackResult(
            attack_name="xiaomi-push-forgery",
            ait_step=AITStep.INVOCATION,
            succeeded=self.system.pms.is_installed(target_package),
            detail={"target": target_package},
        )
