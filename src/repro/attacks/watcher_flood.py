"""The ``watcher-flood`` GIA variant: blind the watcher, then strike.

DAPP (Section V-B) hangs its whole defense off a FileObserver stream.
On a real device that stream is lossy: the inotify queue behind the
watch is bounded, and a flooded queue drops events wholesale, leaving
only an ``IN_Q_OVERFLOW`` marker.  An attacker who can write *anything*
to the watched directory — and on shared external storage every app
can — therefore controls the defender's queue: spam junk files fast
enough and the one event DAPP actually needs (the ``CLOSE_WRITE`` that
marks download completion, its cue to grab the genuine certificate)
falls into the dropped window.  The swap itself then rides the same
blind spot — the attacker fires it right after one of its own bursts,
so the tell-tale ``MOVED_TO`` is dropped too.

The strike logic is inherited from the wait-and-see attacker: poll for
EOCD completeness, pre-stage a repackaged twin, move it over the
target mid-install-window.  The flood only runs while a strike is
still pending (bounded by :data:`FLOOD_MAX_NS` per arm) and junk is
rewritten over a fixed set of names, so the event pressure is high but
the storage footprint is a few KiB.

Against a *lossless* watcher the flood is harmless noise and DAPP
detects the swap normally; against ``dapp-rescan`` the synthesized
``Q_OVERFLOW`` triggers the offline rescan that re-grabs the genuine
certificate.  Both directions are pinned by the fuzz corpus.
"""

from __future__ import annotations

import posixpath
from typing import Generator, Optional

from repro.errors import AccessDenied, FilesystemError
from repro.attacks.base import StoreFingerprint
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.sim.clock import millis, seconds
from repro.sim.kernel import Sleep

#: Flood cadence.  One junk burst per simulated millisecond keeps the
#: defender's queue refilled faster than any realistic drain interval
#: frees slots (the device default is one delivered event per 2 ms).
FLOOD_TICK_NS = millis(1)

#: Junk files rewritten per burst.  Each rewrite emits OPEN + MODIFY +
#: CLOSE_WRITE, so a burst is ~3x this many events — far above the
#: per-tick drain capacity and enough to fill any plausible queue
#: depth within a few ticks.
DEFAULT_FLOOD_BURST = 8

#: Per-arm cap on flooding without a landed strike; past this the
#: attacker degrades to plain wait-and-see polling so a stalled
#: install cannot turn the flood into a livelock.
FLOOD_MAX_NS = seconds(10)

#: Idle poll cadence once the strike for this arm cycle has resolved.
IDLE_POLL_INTERVAL_NS = millis(50)


class WatcherFloodHijacker(WaitAndSeeHijacker):
    """Wait-and-see strike wrapped in a watcher-blinding event flood."""

    def __init__(self, fingerprint: StoreFingerprint,
                 poll_interval_ns: int = FLOOD_TICK_NS,
                 package: Optional[str] = None,
                 flood_burst: int = DEFAULT_FLOOD_BURST) -> None:
        super().__init__(fingerprint, poll_interval_ns=poll_interval_ns,
                         package=package)
        self.flood_burst = flood_burst
        self.flood_writes = 0
        self._flood_denied = False
        self._strikes_at_arm = 0
        self._flood_deadline_ns = 0

    def arm(self, duration_ns: int):
        """Arm for one install: flood until this cycle's strike lands."""
        self._strikes_at_arm = len(self.swaps) + len(self.blocked)
        self._flood_deadline_ns = self.system.now_ns + min(
            duration_ns, FLOOD_MAX_NS)
        return super().arm(duration_ns)

    @property
    def flooding(self) -> bool:
        """True while this arm cycle still wants the watcher blind."""
        if self._flood_denied:
            return False
        if self.system.now_ns >= self._flood_deadline_ns:
            return False
        return len(self.swaps) + len(self.blocked) == self._strikes_at_arm

    def _poll_loop(self, duration_ns: int) -> Generator[Sleep, None, None]:
        deadline = self.system.now_ns + duration_ns
        while self.system.now_ns < deadline:
            flooding = self.flooding
            if flooding:
                self._flood_tick()
            self._scan()
            self._fire_due()
            yield Sleep(self.poll_interval_ns if flooding
                        else IDLE_POLL_INTERVAL_NS)

    def _flood_tick(self) -> None:
        """Rewrite the junk set once: pure event pressure, ~0 bytes."""
        directory = self.fingerprint.watch_dir
        fs = self.system.fs
        if not fs.exists(directory):
            return
        for index in range(self.flood_burst):
            name = f".flood-{index:02d}"
            try:
                self.write_file(posixpath.join(directory, name), b"\0" * 16)
            except (AccessDenied, FilesystemError):
                # Private staging dir (a secure installer): nothing to
                # flood, and the strike will be blocked anyway.
                self._flood_denied = True
                return
            self.flood_writes += 1
