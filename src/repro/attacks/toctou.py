"""Installation hijacking via FileObserver — AIT Step 3 (Section III-B).

The attacker watches the installer's staging directory and counts
events: ``CLOSE_WRITE`` marks the end of the download, and the
store-specific number of ``CLOSE_NOWRITE`` events marks the end of the
integrity check.  The instant the count is reached, the staged APK is
replaced with a repackaged twin (same manifest, attacker payload) —
inside the window between the check and the PMS/PIA read.

Requires only the SD-Card permission, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AccessDenied, FilesystemError
from repro.android.apk import MalformedApk
from repro.android.fileobserver import FileObserver
from repro.android.filesystem import FileEvent, FileEventType
from repro.attacks.base import MaliciousApp, StoreFingerprint


@dataclass
class _FileState:
    """Attack-relevant history of one staged file."""

    download_complete: bool = False
    nowrite_count: int = 0


class FileObserverHijacker(MaliciousApp):
    """The Step-3 TOCTOU attacker."""

    def __init__(self, fingerprint: StoreFingerprint,
                 package: Optional[str] = None) -> None:
        super().__init__(package=package)
        self.fingerprint = fingerprint
        self.observer: Optional[FileObserver] = None
        self._states: Dict[str, _FileState] = {}
        self._dormant = False
        self.swaps: List[str] = []
        self.blocked: List[Tuple[str, str]] = []

    # -- lifecycle ---------------------------------------------------------------

    def arm(self) -> None:
        """Start watching the staging directory."""
        if self.observer is None:
            self.observer = self.file_observer(self.fingerprint.watch_dir)
            self.observer.on_event(self._on_event)
        self._dormant = False
        self._states.clear()
        self.observer.start_watching()
        self.note_armed()

    def disarm(self) -> None:
        """Stop watching."""
        if self.observer is not None:
            self.observer.stop_watching()

    def rearm(self) -> None:
        """Reset state for the next transaction (after a successful swap)."""
        self._dormant = False
        self._states.clear()

    @property
    def succeeded(self) -> bool:
        """True once at least one swap landed."""
        return bool(self.swaps)

    # -- the state machine ----------------------------------------------------------

    def _on_event(self, event: FileEvent) -> None:
        if self._dormant:
            return
        name = event.name
        if not name.endswith(".apk"):
            return
        state = self._states.setdefault(name, _FileState())
        if self.fingerprint.rename_signals_completion:
            # Xiaomi: the tmp-name rename to the official .apk name is
            # the download-completion cue.
            if event.event_type is FileEventType.MOVED_TO:
                state.download_complete = True
                state.nowrite_count = 0
                if self.fingerprint.close_nowrite_count == 0:
                    self._swap(event.path)
                return
        elif event.event_type is FileEventType.CLOSE_WRITE:
            state.download_complete = True
            state.nowrite_count = 0
            if self.fingerprint.close_nowrite_count == 0:
                # A store with no integrity check: swap the instant the
                # download lands — there is no check to wait out.
                self._swap(event.path)
            return
        if event.event_type is FileEventType.CLOSE_NOWRITE and state.download_complete:
            state.nowrite_count += 1
            if state.nowrite_count >= self.fingerprint.close_nowrite_count:
                self._swap(event.path)

    def _swap(self, path: str) -> None:
        """Replace the verified APK with the repackaged twin."""
        self._dormant = True  # one shot per arm/rearm cycle
        try:
            genuine = self.read_file(path)
            replacement = self.forge_replacement(genuine)
            self.write_file(path, replacement.to_bytes())
        except AccessDenied as exc:
            # A defense (FUSE DAC) vetoed the write.
            self.blocked.append((path, str(exc)))
            self.note_strike(path, blocked=True, reason=str(exc))
            return
        except (MalformedApk, FilesystemError) as exc:
            self.blocked.append((path, f"swap failed: {exc}"))
            self.note_strike(path, blocked=True, reason=f"swap failed: {exc}")
            return
        self.swaps.append(path)
        self.note_strike(path)
