"""Hare (Hanging Attribute Reference) permission grabbing
(Section III-B, privilege escalation — the S-Voice/Link case).

A *Hare* permission is used by some app but defined by none on the
device.  The attack:

1. via a GIA, silently install a platform-signed system app (S-Voice)
   that guards the user's contacts behind
   ``com.vlingo.midas.contacts.permission.READ`` — a permission nothing
   on this image defines,
2. the malware **defines** that permission itself (first-definer-wins)
   at protection level ``normal`` and requests it — granted with no
   dialog,
3. query S-Voice's contacts interface: the permission check passes,
   the contacts leak.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.android.apk import Apk, ApkBuilder
from repro.android.app import App
from repro.android.signing import SigningKey
from repro.attacks.base import MaliciousApp
from repro.core.ait import AITStep
from repro.core.outcomes import AttackResult

SVOICE_PACKAGE = "com.vlingo.midas"
VLINGO_READ = "com.vlingo.midas.contacts.permission.READ"
VLINGO_WRITE = "com.vlingo.midas.contacts.permission.WRITE"

DEFAULT_CONTACTS: Tuple[str, ...] = (
    "Alice Zhang:+1-812-555-0001",
    "Bob Iyer:+1-812-555-0002",
    "Carol Novak:+1-812-555-0003",
)


def build_svoice_apk(platform_key: SigningKey) -> Apk:
    """S-Voice: *uses* the vlingo permissions but defines neither."""
    return (
        ApkBuilder(SVOICE_PACKAGE)
        .label("S Voice")
        .uses_permission(VLINGO_READ, VLINGO_WRITE)
        .payload(b"<s-voice assistant code>")
        .build(platform_key)
    )


CONTACTS_AUTHORITY = "com.vlingo.midas.contacts"


class HareCreatingSystemApp(App):
    """S-Voice at runtime: a contacts provider guarded by a Hare.

    On attach it registers a content provider whose read/write guards
    are the vlingo permissions — permissions *nothing on this image
    defines*.  The guard logic itself is sound; the ownership of the
    permission name is the hole.
    """

    package = SVOICE_PACKAGE

    def __init__(self, contacts: Tuple[str, ...] = DEFAULT_CONTACTS) -> None:
        super().__init__()
        self.contacts = list(contacts)

    def on_attached(self) -> None:
        self.system.content_resolver.register(
            CONTACTS_AUTHORITY,
            owner_package=self.package,
            read_permission=VLINGO_READ,
            write_permission=VLINGO_WRITE,
            rows=self.contacts,
        )

    def query_contacts(self, requesting_package: str) -> List[str]:
        """Query the provider on behalf of ``requesting_package``."""
        caller = self.system.caller_for(requesting_package)
        return self.system.content_resolver.query(caller, CONTACTS_AUTHORITY)


class HareAttacker(MaliciousApp):
    """Malware that defines the hanging permission and uses it."""

    def __init__(self, package: Optional[str] = None) -> None:
        super().__init__(package=package)
        self.stolen_contacts: List[str] = []

    @staticmethod
    def build_hare_apk(package: str = "com.fun.flashlight") -> Apk:
        """Attacker APK that defines + uses the vlingo permissions.

        Defining them at level ``normal`` means they are auto-granted.
        """
        key = SigningKey("gia-attacker", "key0")
        return (
            ApkBuilder(package)
            .label("Fun Flashlight")
            .version(2)
            .defines_permission(VLINGO_READ, level="normal")
            .defines_permission(VLINGO_WRITE, level="normal")
            .uses_permission(VLINGO_READ, VLINGO_WRITE)
            .payload(b"<flashlight + hare grabber>")
            .build(key)
        )

    def grab_and_steal(self, svoice: HareCreatingSystemApp) -> AttackResult:
        """Steal contacts through the grabbed permission."""
        from repro.errors import SecurityException

        try:
            self.stolen_contacts = svoice.query_contacts(self.package)
            succeeded = bool(self.stolen_contacts)
        except SecurityException:
            succeeded = False
        return AttackResult(
            attack_name="hare-permission-grab",
            ait_step=AITStep.INSTALL,
            succeeded=succeeded,
            detail={
                "permission": VLINGO_READ,
                "contacts_stolen": len(self.stolen_contacts),
            },
        )
