"""The redirect-Intent attack — AIT Step 1 (Section III-D).

A victim app (e.g. Facebook) sends an Intent redirecting the user to an
appstore page for a predictable app (e.g. Facebook Messenger).  The
malware polls ``/proc/<pid>/oom_adj`` — zero while a process owns the
foreground — and the instant the victim yields the foreground to the
store, fires its *own* Intent at the store, switching the displayed page
to a lookalike app before the user perceives the first page.  No fake
activity is drawn and no permission is needed; the store's own UI does
the phishing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import AndroidError
from repro.android.intents import FLAG_ACTIVITY_SINGLE_TOP, Intent
from repro.android.proc import OOM_ADJ_FOREGROUND
from repro.attacks.base import MaliciousApp
from repro.core.ait import AITStep
from repro.core.outcomes import AttackResult
from repro.sim.clock import millis
from repro.sim.kernel import Sleep

DEFAULT_POLL_INTERVAL_NS = millis(20)


class RedirectIntentAttacker(MaliciousApp):
    """The oom_adj-polling UI redirector."""

    def __init__(self, victim_package: str, store_package: str,
                 lookalike_package: str,
                 poll_interval_ns: int = DEFAULT_POLL_INTERVAL_NS,
                 fire_delay_ns: int = 0,
                 package: Optional[str] = None) -> None:
        super().__init__(package=package)
        self.victim_package = victim_package
        self.store_package = store_package
        self.lookalike_package = lookalike_package
        self.poll_interval_ns = poll_interval_ns
        # Optional extra delay between detection and firing; the paper
        # notes the racing Intent must land 200-500 ms after the
        # legitimate one to replace the screen unnoticed.
        self.fire_delay_ns = fire_delay_ns
        self.fired_at_ns: Optional[int] = None
        self.delivery_allowed: Optional[bool] = None

    @property
    def fired(self) -> bool:
        """True once the racing Intent was sent."""
        return self.fired_at_ns is not None

    def arm(self, duration_ns: int):
        """Start the oom_adj poll loop; returns the spawned process."""
        return self.system.kernel.spawn(
            self._poll_loop(duration_ns), name="redirect-intent-poll"
        )

    def result(self) -> AttackResult:
        """Report: did the store end up displaying the lookalike?"""
        store_app = self.system.ams
        succeeded = False
        frame = store_app.top_frame()
        if frame is not None and frame.package == self.store_package:
            succeeded = (
                frame.intent.extras.get("show_package") == self.lookalike_package
            )
        return AttackResult(
            attack_name="redirect-intent",
            ait_step=AITStep.INVOCATION,
            succeeded=succeeded and bool(self.delivery_allowed),
            detail={
                "victim": self.victim_package,
                "lookalike": self.lookalike_package,
                "fired_at_ns": self.fired_at_ns,
            },
        )

    # -- poll loop -------------------------------------------------------------------

    def _poll_loop(self, duration_ns: int) -> Generator[Sleep, None, None]:
        deadline = self.system.now_ns + duration_ns
        while self.system.now_ns < deadline and not self.fired:
            if self._victim_left_foreground_to_store():
                if self.fire_delay_ns:
                    yield Sleep(self.fire_delay_ns)
                self._fire()
                return
            yield Sleep(self.poll_interval_ns)

    def _victim_left_foreground_to_store(self) -> bool:
        try:
            victim_adj = self.system.procfs.oom_adj_of(self.victim_package)
        except AndroidError:
            return False
        if victim_adj == OOM_ADJ_FOREGROUND:
            return False
        return self.system.procfs.foreground_package == self.store_package

    def _fire(self) -> None:
        intent = Intent(
            target_package=self.store_package,
            target_activity="AppDetailActivity",
            flags=FLAG_ACTIVITY_SINGLE_TOP,
        ).with_extra("show_package", self.lookalike_package)
        self.fired_at_ns = self.system.now_ns
        self.delivery_allowed = self.start_activity(intent)
