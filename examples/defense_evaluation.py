#!/usr/bin/env python3
"""Defense evaluation: the Table VII effectiveness matrix.

Runs every Step-3 attack against every SD-Card installer, once
undefended and once per defense, and prints who prevented/detected
what — plus the false-positive check on a benign workload.

Run:  python examples/defense_evaluation.py
"""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.campaign import Campaign, benign_workload
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    QihooInstaller,
    XiaomiInstaller,
)
from repro.measurement.report import render_table

STORES = [AmazonInstaller, XiaomiInstaller, BaiduInstaller, QihooInstaller,
          DTIgniteInstaller]
ATTACKS = [("FileObserver", FileObserverHijacker),
           ("wait-and-see", WaitAndSeeHijacker)]
DEFENSES = [(), ("dapp",), ("fuse-dac",)]


def run_cell(installer_cls, attacker_cls, defenses):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: attacker_cls(fingerprint_for(installer_cls)),
        defenses=defenses,
    )
    scenario.publish_app("com.victim.app", label="Victim")
    outcome = scenario.run_install("com.victim.app")
    if outcome.hijacked and scenario.dapp is not None and scenario.dapp.detected:
        return "hijacked+DETECTED"
    if outcome.hijacked:
        return "HIJACKED"
    if scenario.fuse_dac is not None and scenario.fuse_dac.report.prevented:
        return "prevented"
    return "clean"


def main():
    for attack_name, attacker_cls in ATTACKS:
        rows = []
        for installer_cls in STORES:
            row = [installer_cls.profile.label]
            for defenses in DEFENSES:
                row.append(run_cell(installer_cls, attacker_cls, defenses))
            rows.append(row)
        print(render_table(
            f"Attack: {attack_name} hijacking",
            ["installer", "undefended", "DAPP", "FUSE-DAC"],
            rows,
        ))
        print()

    print("False-positive study (benign workload, all defenses on):")
    scenario = Scenario.build(
        installer=AmazonInstaller,
        defenses=("dapp", "fuse-dac", "intent-detection", "intent-origin"),
    )
    packages = benign_workload(scenario, count=60)
    stats = Campaign(scenario).install_many(packages)
    print(f"  installs: {stats.runs}  clean: {stats.clean_installs}  "
          f"alarms: {stats.alarms}  blocked: {stats.blocked}")


if __name__ == "__main__":
    main()
