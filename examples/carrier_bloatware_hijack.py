#!/usr/bin/env python3
"""The DTIgnite scenario: carrier push hijacking and what it buys.

A Galaxy S6 Edge on Verizon ships DTIgnite, which silently pushes
carrier apps through the Download Manager onto /sdcard/DTIgnite.  The
malicious app:

1. hijacks a carrier push with the *wait-and-see* strategy (no
   FileObserver: poll for the EOCD record, wait 2 s, move a pre-staged
   twin into place),
2. escalates: plants the vulnerable platform-signed remote-support app
   (every Samsung device shares one platform key, so it immediately
   receives INSTALL_PACKAGES), then drives its unauthenticated command
   interface to silently install a second-stage payload,
3. grabs a Hare permission to steal contacts guarded by S-Voice.

Run:  python examples/carrier_bloatware_hijack.py
"""

from repro.android import device
from repro.android.apk import ApkBuilder
from repro.attacks.base import MaliciousApp, fingerprint_for
from repro.attacks.hare import HareAttacker, HareCreatingSystemApp, build_svoice_apk
from repro.attacks.privilege_escalation import (
    VULNERABLE_APP_PACKAGE,
    VulnerableSystemApp,
    VulnerableSystemAppAttacker,
    build_vulnerable_apk,
)
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.installers import DTIgniteInstaller


def main():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: WaitAndSeeHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
        device=device.galaxy_s6_edge_verizon(),
    )
    print(f"device  : {scenario.system.profile.model} "
          f"({scenario.system.profile.carrier})")

    # -- stage 1: hijack the carrier push ---------------------------------
    scenario.publish_app("com.carrier.nflmobile", label="NFL Mobile")
    outcome = scenario.run_install("com.carrier.nflmobile")
    print(f"\n[1] carrier push hijacked: {outcome.hijacked} "
          f"(installed signer: {outcome.installed_certificate_owner})")

    # -- stage 2: plant the vulnerable platform-signed app ------------------
    vuln_apk = build_vulnerable_apk(scenario.system.platform_key)
    scenario.publish_apk(vuln_apk)
    scenario.run_install(VULNERABLE_APP_PACKAGE, arm_attacker=False)
    has_priv = scenario.system.pms.check_permission(
        "android.permission.INSTALL_PACKAGES", VULNERABLE_APP_PACKAGE
    )
    print(f"[2] vulnerable app planted; INSTALL_PACKAGES granted: {has_priv}")

    vulnerable = VulnerableSystemApp()
    scenario.system.attach(vulnerable)
    exploiter = VulnerableSystemAppAttacker(package="com.evil.exploiter")
    scenario.system.install_user_app(MaliciousApp.build_apk("com.evil.exploiter"))
    scenario.system.attach(exploiter)
    stage2 = (
        ApkBuilder("com.evil.stage2")
        .label("System Helper")
        .uses_permission("android.permission.READ_CONTACTS")
        .payload(b"<stage 2>")
        .build(exploiter.key)
    )
    exploiter.make_dirs("/sdcard/Download")
    exploiter.write_file("/sdcard/Download/s2.apk", stage2.to_bytes())
    exploiter.exploit_install("/sdcard/Download/s2.apk")
    scenario.system.run()
    print(f"    second-stage payload silently installed: "
          f"{scenario.system.pms.is_installed('com.evil.stage2')}")

    # -- stage 3: Hare permission grab --------------------------------------
    scenario.publish_apk(build_svoice_apk(scenario.system.platform_key))
    scenario.run_install("com.vlingo.midas", arm_attacker=False)
    svoice = HareCreatingSystemApp()
    scenario.system.attach(svoice)
    scenario.system.install_user_app(HareAttacker.build_hare_apk("com.evil.hare"))
    hare = HareAttacker(package="com.evil.hare")
    scenario.system.attach(hare)
    result = hare.grab_and_steal(svoice)
    print(f"[3] hare grab succeeded: {result.succeeded}; "
          f"contacts stolen: {hare.stolen_contacts}")


if __name__ == "__main__":
    main()
