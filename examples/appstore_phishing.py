#!/usr/bin/env python3
"""Step-1 attacks: UI redirection and installer command injection.

Three exploits from Section III-D on one device:

1. **Redirect Intent**: Facebook redirects the user to the Play page of
   Facebook Messenger; the background malware polls
   /proc/<pid>/oom_adj, catches the foreground handoff, and races its
   own Intent in — the user taps Install on a typosquatted lookalike.
2. **Amazon JS bridge**: an Intent carrying JavaScript makes the Amazon
   appstore silently install and uninstall apps.
3. **Xiaomi push forgery**: a forged cloud-push broadcast makes the
   Xiaomi store silently install the attacker's app.

Then the paper's Intent defenses are switched on and the redirect is
caught/attributed.

Run:  python examples/appstore_phishing.py
"""

from repro.android.apk import ApkBuilder
from repro.android.app import App
from repro.android.intents import Intent
from repro.android.signing import SigningKey
from repro.attacks.command_injection import (
    AmazonJsInjectionAttacker,
    XiaomiPushForgeryAttacker,
)
from repro.attacks.redirect_intent import RedirectIntentAttacker
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, GooglePlayInstaller, XiaomiInstaller
from repro.sim.clock import seconds


class FacebookApp(App):
    package = "com.facebook.katana"

    def open_messenger_page(self):
        self.start_activity(
            Intent(target_package="com.android.vending",
                   target_activity="AppDetailActivity")
            .with_extra("show_package", "com.facebook.orca")
        )


def redirect_demo(defenses=()):
    scenario = Scenario.build(
        installer=GooglePlayInstaller,
        attacker_factory=lambda s: RedirectIntentAttacker(
            victim_package="com.facebook.katana",
            store_package="com.android.vending",
            lookalike_package="com.faceboook.orca",
        ),
        defenses=defenses,
    )
    scenario.publish_app("com.facebook.orca", label="Messenger")
    scenario.publish_app("com.faceboook.orca", label="Messenger")
    scenario.system.install_user_app(
        ApkBuilder("com.facebook.katana").label("Facebook")
        .build(SigningKey("facebook", "k"))
    )
    facebook = FacebookApp()
    scenario.system.attach(facebook)
    scenario.system.ams.bring_to_foreground(facebook.package)
    scenario.attacker.arm(seconds(5))
    facebook.open_messenger_page()
    scenario.system.run()
    scenario.installer.user_clicks_install()
    scenario.system.run()
    return scenario


def main():
    print("=== 1. Redirect Intent phishing " + "=" * 30)
    scenario = redirect_demo()
    print(f"user thought they were sent to : com.facebook.orca")
    print(f"store page actually displayed  : {scenario.installer.displayed_package}")
    print(f"app the user's tap installed   : "
          f"{'com.faceboook.orca' if scenario.system.pms.is_installed('com.faceboook.orca') else 'genuine'}")

    print("\n--- with intent-detection + intent-origin defenses ---")
    defended = redirect_demo(defenses=("intent-detection", "intent-origin"))
    for alarm in defended.intent_detection.report.alarms:
        print(f"ALARM: {alarm}")
    top = defended.system.ams.top_frame()
    print(f"origin now visible to the store: {top.intent.get_intent_origin()}")

    print("\n=== 2. Amazon JS-bridge command injection " + "=" * 20)
    amazon = Scenario.build(installer=AmazonInstaller,
                            attacker=AmazonJsInjectionAttacker)
    amazon.publish_app("com.evil.payload", label="Totally Legit")
    amazon.attacker.inject_install("com.evil.payload")
    amazon.system.run()
    print(f"silently installed : {amazon.system.pms.is_installed('com.evil.payload')}")
    amazon.attacker.inject_uninstall("com.evil.payload")
    amazon.system.run()
    print(f"silently removed   : {not amazon.system.pms.is_installed('com.evil.payload')}")

    print("\n=== 3. Xiaomi push forgery " + "=" * 34)
    xiaomi = Scenario.build(installer=XiaomiInstaller,
                            attacker=XiaomiPushForgeryAttacker)
    xiaomi.publish_app("com.evil.payload2", label="Evil", app_id="id-7")
    xiaomi.attacker.forge_push("id-7", "com.evil.payload2")
    xiaomi.system.run()
    print(f"forged push installed: "
          f"{xiaomi.system.pms.is_installed('com.evil.payload2')}")

    protected = Scenario.build(
        installer=XiaomiInstaller(receiver_protected=True),
        attacker=XiaomiPushForgeryAttacker,
    )
    protected.publish_app("com.evil.payload2", label="Evil", app_id="id-7")
    reached = protected.attacker.forge_push("id-7", "com.evil.payload2")
    protected.system.run()
    print(f"with permission-guarded receiver, forgery reached {reached} receivers")


if __name__ == "__main__":
    main()
