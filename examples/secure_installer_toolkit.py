#!/usr/bin/env python3
"""Section VII in practice: auditing installers and installing safely.

1. Audit every bundled installer design against the paper's four
   developer suggestions (the linter flags exactly the weaknesses
   Section III exploited).
2. Run the by-the-book :class:`ToolkitInstaller` on a space-starved
   device: it falls back to the SD-Card (Suggestion 1's arithmetic),
   arms its own FileObserver guard (the Section V technique), and an
   active wait-and-see attacker gets its stage discarded — the install
   fails closed or completes genuine, never hijacked.

Run:  python examples/secure_installer_toolkit.py
"""

from repro.attacks.base import StoreFingerprint
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.installers import all_installer_types
from repro.sim.clock import millis
from repro.toolkit import ToolkitInstaller, audit_profile


def main():
    print("=== Installer design audit (Section VII suggestions) ===\n")
    targets = dict(all_installer_types())
    targets["toolkit"] = ToolkitInstaller
    for name in sorted(targets):
        findings = audit_profile(targets[name].profile)
        worst = findings[0].severity.value.upper() if findings else "CLEAN"
        print(f"{name:18s} {worst:8s} ({len(findings)} findings)")

    print("\n=== ToolkitInstaller under attack on a squeezed device ===\n")
    scenario = Scenario.build(
        installer=ToolkitInstaller(idle_before_install_ns=millis(800)),
        attacker_factory=lambda s: WaitAndSeeHijacker(
            StoreFingerprint(
                watch_dir="/sdcard/toolkit-installer",
                close_nowrite_count=1,
                wait_and_see_delay_ns=millis(200),
            )
        ),
    )
    volume = scenario.system.internal_volume
    volume.charge(volume.free_bytes - 10 * 1024 * 1024)  # ~10 MB free
    scenario.publish_app("com.big.game", label="Big Game",
                         size_bytes=2 * 1024 * 1024)
    outcome = scenario.run_install("com.big.game")
    decision = scenario.installer.decisions[-1]
    print(f"storage decision : {decision.choice.value} "
          f"(needed {decision.required_internal_bytes >> 20} MB internally, "
          f"had {decision.free_internal_bytes >> 20} MB)")
    print(f"attacker swaps   : {len(scenario.attacker.swaps)}")
    print(f"stages discarded : {scenario.installer.aborted_stages}")
    print(f"installed        : {outcome.installed}")
    print(f"hijacked         : {outcome.hijacked}")
    if outcome.installed:
        print(f"signer           : {outcome.installed_certificate_owner}")
    print("\nverdict: the attacker never got code installed — the toolkit "
          "fails closed.")


if __name__ == "__main__":
    main()
