#!/usr/bin/env python3
"""Quickstart: hijack one app installation, then stop the attack.

Reproduces the paper's core result in ~40 lines: the Amazon appstore
stages APKs on the SD-Card and verifies their hash — and a malicious
app holding nothing but the storage permission still swaps the package
inside the TOCTOU window.  Then the same attack is run against the
FUSE-DAC-hardened system, where it is blocked.

Run:  python examples/quickstart.py
"""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller


def run(defenses=()):
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(AmazonInstaller)
        ),
        defenses=defenses,
    )
    scenario.publish_app("com.bank.app", label="MyBank")
    outcome = scenario.run_install("com.bank.app")
    return scenario, outcome


def main():
    print("=== Undefended device " + "=" * 40)
    scenario, outcome = run()
    print(outcome.trace.describe())
    print(f"installed signer : {outcome.installed_certificate_owner}")
    print(f"genuine signer   : {outcome.genuine_certificate_owner}")
    print(f"HIJACKED         : {outcome.hijacked}")

    print()
    print("=== With the FUSE DAC defense " + "=" * 32)
    scenario, outcome = run(defenses=("fuse-dac",))
    print(f"installed signer : {outcome.installed_certificate_owner}")
    print(f"HIJACKED         : {outcome.hijacked}")
    for blocked in scenario.fuse_dac.report.blocked_operations:
        print(f"blocked          : {blocked}")


if __name__ == "__main__":
    main()
