#!/usr/bin/env python3
"""Forensics: watch a hijack happen on the event timeline — then
recover the same story from the recorded trace alone.

Runs the DTIgnite hijack twice over the same seed:

1. undefended, with a :class:`~repro.core.timeline.Timeline` narrating
   the filesystem events and AIT steps as they happen, and
2. defended by ``fuse-dac``, recording only the observability trace.

Both runs also feed a :class:`~repro.obs.TraceRecorder`, and the
analysis half of :mod:`repro.obs` — :func:`window_forensics`,
:func:`critical_path`, :func:`diff_traces` — reconstructs the attack
window, the latency-dominating span chain, and the defense's effect
purely from the recorded spans/events: no hand-parsing of records.

Run:  python examples/attack_forensics.py
"""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.core.timeline import Timeline
from repro.installers import DTIgniteInstaller
from repro.obs import (
    TraceRecorder,
    critical_path,
    diff_traces,
    render_critical_path,
    render_diff,
    render_windows,
    window_forensics,
)


def run_hijack(defenses=()):
    """One DTIgnite install under attack; returns (outcome, records)."""
    recorder = TraceRecorder()
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
        defenses=defenses,
        recorder=recorder,
    )
    timeline = Timeline(scenario.system).start()
    scenario.publish_app("com.victim.app", label="Victim")
    timeline.note("attacker armed: watching /sdcard/DTIgnite, "
                  "swap after 1 CLOSE_NOWRITE")
    outcome = scenario.run_install("com.victim.app")
    timeline.absorb_trace(outcome.trace)
    return outcome, recorder.records(), timeline


def main():
    outcome, records, timeline = run_hijack()

    print("=== transcript (staged file + AIT steps + notes) ===\n")
    staged = "/sdcard/DTIgnite/com.victim.app.apk"
    relevant = [
        entry for entry in sorted(timeline.entries,
                                  key=lambda e: e.time_ns)
        if entry.source in ("ait", "note", "pms") or staged in entry.text
    ]
    for entry in relevant:
        print(f"{entry.time_ns / 1e6:>10.2f} ms  [{entry.source:4s}] "
              f"{entry.text}")

    print(f"\nhijacked: {outcome.hijacked} "
          f"(installed signer: {outcome.installed_certificate_owner})")

    # The same story, recovered from the trace records alone: the
    # armed->strike window joined against the install outcome.
    print("\n=== window forensics (from the trace, no hand-parsing) ===\n")
    print(render_windows(window_forensics(records)))

    print("\n=== critical path of the run ===\n")
    print(render_critical_path(critical_path(records)))

    # Re-run behind fuse-dac and diff the traces: the defense's effect
    # is visible as the records it adds (the block) and removes (the
    # hijack).
    defended_outcome, defended_records, _ = run_hijack(
        defenses=("fuse-dac",))
    print("\n=== defense-off vs defense-on trace diff ===\n")
    print(render_diff(diff_traces(records, defended_records),
                      max_detail=6))
    print(f"\ndefended hijacked: {defended_outcome.hijacked}")


if __name__ == "__main__":
    main()
