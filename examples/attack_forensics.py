#!/usr/bin/env python3
"""Forensics: watch a hijack happen on the event timeline.

Runs the DTIgnite hijack with a :class:`~repro.core.timeline.Timeline`
recording every filesystem event, package broadcast and AIT step, then
prints the annotated transcript — download, integrity check, the
attacker's swap landing in the window, and the PMS reading the
replaced file.

Run:  python examples/attack_forensics.py
"""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.core.timeline import Timeline
from repro.installers import DTIgniteInstaller


def main():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    timeline = Timeline(scenario.system).start()
    scenario.publish_app("com.victim.app", label="Victim")
    timeline.note("attacker armed: watching /sdcard/DTIgnite, "
                  "swap after 1 CLOSE_NOWRITE")
    outcome = scenario.run_install("com.victim.app")
    timeline.absorb_trace(outcome.trace)

    print("=== transcript (staged file + AIT steps + notes) ===\n")
    staged = "/sdcard/DTIgnite/com.victim.app.apk"
    relevant = [
        entry for entry in sorted(timeline.entries,
                                  key=lambda e: e.time_ns)
        if entry.source in ("ait", "note", "pms") or staged in entry.text
    ]
    for entry in relevant:
        print(f"{entry.time_ns / 1e6:>10.2f} ms  [{entry.source:4s}] "
              f"{entry.text}")

    print(f"\nhijacked: {outcome.hijacked} "
          f"(installed signer: {outcome.installed_certificate_owner})")
    print("\nreading the transcript: the CLOSE_WRITE at ~80 ms is the "
          "download; the CLOSE_NOWRITE at ~1080 ms is DTIgnite's hash "
          "check; the second CLOSE_WRITE right after it is the attacker's "
          "swap — inside the 2.5 s window before the PMS read at ~3580 ms.")


if __name__ == "__main__":
    main()
