#!/usr/bin/env python3
"""The full Section IV measurement study over the synthetic corpora.

Generates the Play and pre-installed corpora and the factory-image
fleet, runs the classifier / redirect scan / platform-key / Hare
analyses, and prints Tables II-VI plus the two prose findings.

Run:  python examples/measurement_study.py
"""

from repro.analysis.factory_images import generate_fleet
from repro.analysis.hare_analysis import search_images
from repro.analysis.platform_keys import analyze, generate_appstore_catalogs
from repro.measurement.report import (
    render_installer_breakdown,
    render_table4,
    render_table5,
    render_table6,
)
from repro.measurement.tables import (
    compute_table2,
    compute_table3,
    compute_table4,
    compute_table5,
    compute_table6,
)


def main():
    print("generating corpora and fleet (seeded, deterministic)...\n")

    print(render_installer_breakdown(
        "Table II: potentially vulnerable GooglePlay apps (SD-Card usage)",
        compute_table2(),
    ))
    print()
    print(render_installer_breakdown(
        "Table III: potentially vulnerable pre-installed apps",
        compute_table3(),
    ))
    print()
    print(render_table4(compute_table4()))
    print()

    fleet = generate_fleet()
    print(render_table5(compute_table5(fleet)))
    print()
    print(render_table6(compute_table6(fleet)))
    print()

    catalogs = generate_appstore_catalogs()
    keys = analyze(fleet, catalogs)
    print("Platform key usage (Section IV-B):")
    for vendor, count in keys.keys_per_vendor.items():
        print(
            f"  {vendor:8s}: {count} platform key; "
            f"{keys.avg_platform_signed_per_image[vendor]:.0f} platform-signed "
            f"apps/image; {keys.distinct_platform_packages[vendor]} distinct; "
            f"{keys.store_signed_counts[vendor]} platform-signed apps found "
            "in appstores"
        )
    vulnerable = keys.vulnerable_store_apps()
    print(f"  known-vulnerable platform-signed store app: "
          f"{vulnerable[0].package if vulnerable else 'none'}")
    print()

    hare = search_images(fleet)
    print("Hare permissions (Section IV-B):")
    print(f"  hare-using apps on 10 sample images : {len(hare.hare_apps)}")
    print(f"  unique vulnerable cases             : {hare.total_cases}")
    print(f"  average per searched image          : {hare.average_per_image:.1f}")


if __name__ == "__main__":
    main()
