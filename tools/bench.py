#!/usr/bin/env python3
"""Wall-clock benchmark harness for the fleet-engine hot path.

Times the reference fleet (a serial, attack-free campaign — the
engine's per-install overhead with no pool scheduling noise), then
either records the measurement as a ``BENCH_*.json`` baseline or
gates it against a committed one:

    python tools/bench.py --write BENCH_fleet.json
    python tools/bench.py --compare BENCH_fleet.json          # exit 1 on
                                                              # >10% slowdown

``--compare`` exits 0 when the best-of-N wall clock is within the
threshold of the baseline, 1 on a regression, 2 on usage errors.
``--inject-slowdown 0.2`` scales the measurement by +20% before the
gate — the synthetic-regression knob the tests use to prove the gate
actually fires.  ``--trace``/``--report`` export the evidence CI
uploads as build artifacts.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import CampaignSpec, NullProgress, run_fleet  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.obs import host_metadata, write_trace_jsonl  # noqa: E402
from repro.obs.baseline import (  # noqa: E402
    BenchBaseline,
    load_baseline,
    regression_gate,
    save_baseline,
)

#: The reference fleet: large enough that best-of-N wall clock is
#: stable (seconds, not milliseconds), small enough for a CI job.
DEFAULT_INSTALLS = 2000
DEFAULT_SHARDS = 4
DEFAULT_SEED = 7

#: The reference analysis workload for ``--analyze``: the scaled Play
#: corpus the acceptance gate runs (classifier + redirect scan per app).
DEFAULT_APPS = 100000


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="benchmark the fleet engine against a wall-clock baseline")
    parser.add_argument("--installs", type=int, default=DEFAULT_INSTALLS)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--backend", default="serial",
                        choices=["serial", "process", "auto"],
                        help="serial by default: per-install cost without "
                             "pool scheduling noise")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions; the gate uses the best")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="tolerated relative slowdown (0.10 = 10%%)")
    parser.add_argument("--inject-slowdown", type=float, default=0.0,
                        metavar="FRAC",
                        help="synthetic slowdown added to the measurement "
                             "(testing the gate itself)")
    parser.add_argument("--write", metavar="PATH",
                        help="record the measurement as a baseline file")
    parser.add_argument("--compare", metavar="PATH",
                        help="gate the measurement against a baseline file")
    parser.add_argument("--trace", metavar="PATH",
                        help="also export a JSONL trace of one observed run")
    parser.add_argument("--report", metavar="PATH",
                        help="write the text report to PATH as well")
    parser.add_argument("--profile", type=int, default=0, metavar="N",
                        help="cProfile one fleet run and append the top N "
                             "functions by cumulative time (usable without "
                             "--write/--compare)")
    parser.add_argument("--serve", type=int, default=0, metavar="JOBS",
                        help="measure warm-pool jobs/s against cold "
                             "one-shot fleets over JOBS submissions "
                             "(usable without --write/--compare)")
    parser.add_argument("--serve-installs", type=int, default=200,
                        help="installs per job in --serve mode (small on "
                             "purpose: pool startup is the cost under test)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes in --serve mode")
    parser.add_argument("--analyze", action="store_true",
                        help="benchmark the sharded measurement pipeline "
                             "(apps/s) instead of the install engine")
    parser.add_argument("--apps", type=int, default=DEFAULT_APPS,
                        help="scaled Play-corpus size in --analyze mode")
    parser.add_argument("--warm", action="store_true",
                        help="in --analyze mode, also time a cold-"
                             "populate + warm re-run through a fresh "
                             "analysis cache; recorded as baseline "
                             "metadata (the gate still compares the "
                             "cold, cache-free wall clock)")
    parser.add_argument("--telemetry", action="store_true",
                        help="run the timed fleets with per-shard "
                             "telemetry sampling on (measures the "
                             "probe's own overhead)")
    return parser


def time_fleet(spec: CampaignSpec, shards: int, backend: str,
               repeat: int, telemetry: bool = False) -> list:
    """Best-of-N timing of the reference fleet (seconds per repeat)."""
    runs = []
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        report = run_fleet(spec, shards=shards, backend=backend,
                           progress=NullProgress(), telemetry=telemetry)
        runs.append(time.perf_counter() - started)
        if report.stats.runs != spec.installs:
            raise ReproError(
                f"benchmark fleet ran {report.stats.runs} installs, "
                f"expected {spec.installs}")
    return runs


def time_analysis(apps: int, shards: int, backend: str, seed: int,
                  repeat: int, telemetry: bool = False) -> list:
    """Best-of-N timing of the sharded analysis pipeline."""
    from repro.analysis.pipeline import AnalysisSpec, run_analysis

    spec = AnalysisSpec(corpus="play", apps=apps, seed=seed)
    runs = []
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        report = run_analysis(spec, shards=shards, backend=backend,
                              telemetry=telemetry)
        runs.append(time.perf_counter() - started)
        if report.stats.runs != apps:
            raise ReproError(
                f"benchmark analysis covered {report.stats.runs} apps, "
                f"expected {apps}")
    return runs


def time_analysis_warm(apps: int, shards: int, backend: str, seed: int,
                       telemetry: bool = False) -> dict:
    """Cold-populate + warm re-run timings through a fresh pack cache.

    The warm run must serve every app from the cache (0 analyzed) and
    reproduce the cold stats exactly — both are asserted, so the warm
    number can never come from doing different work.
    """
    import shutil
    import tempfile

    from repro.analysis.pipeline import AnalysisSpec, run_analysis

    cache_dir = tempfile.mkdtemp(prefix="bench-analysis-cache-")
    try:
        spec = AnalysisSpec(corpus="play", apps=apps, seed=seed,
                            cache_dir=cache_dir)
        started = time.perf_counter()
        cold = run_analysis(spec, shards=shards, backend=backend,
                            telemetry=telemetry)
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_analysis(spec, shards=shards, backend=backend,
                            telemetry=telemetry)
        warm_seconds = time.perf_counter() - started
        hits = warm.counters.get("cache_hits", 0)
        misses = warm.counters.get("cache_misses", 0)
        if misses or hits != apps:
            raise ReproError(
                f"warm analysis re-analyzed {misses} app(s) "
                f"({hits} hit(s)); the cache must serve all {apps}")
        if warm.stats.counters != cold.stats.counters:
            raise ReproError("warm analysis stats diverged from cold")
        return {
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "warm_throughput": round(apps / warm_seconds, 2),
            "warm_hits": hits,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def profile_fleet(spec: CampaignSpec, shards: int, backend: str,
                  top: int) -> str:
    """cProfile one fleet run; the top-``top`` cumulative-time report.

    Paths are stripped to bare filenames (``pstats.strip_dirs``) so the
    committed report is stable across checkouts and interpreters.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    run_fleet(spec, shards=shards, backend=backend, progress=NullProgress())
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return stream.getvalue().rstrip()


def bench_serve(installs: int, shards: int, jobs: int, workers: int,
                seed: int) -> list:
    """Warm-pool vs cold-start job throughput (the serve daemon's win).

    Cold runs each job the way one-shot ``repro fleet`` does — a fresh
    worker pool per campaign, fork+import paid every time.  Warm runs
    the same jobs through one resident :class:`FleetExecutor` pool
    after a single untimed warm-up job, which is exactly the serve
    daemon's steady state.  Stats are asserted equal, so the speedup
    is never bought with different work.
    """
    from repro.engine import FleetExecutor, multiprocessing_usable

    if not multiprocessing_usable():
        raise ReproError("--serve needs multiprocessing (process pools "
                         "are unavailable in this environment)")
    spec = CampaignSpec(installs=installs, seed=seed)
    expected = None
    started = time.perf_counter()
    for _ in range(jobs):
        report = run_fleet(spec, shards=shards, backend="process",
                           workers=workers, progress=NullProgress())
        expected = report.stats.counter_tuple()
    cold = time.perf_counter() - started
    with FleetExecutor(workers=workers, backend="process",
                       warm=True) as fleet:
        fleet.run(spec, shards=shards)  # pool warm-up, untimed
        started = time.perf_counter()
        for _ in range(jobs):
            report = fleet.run(spec, shards=shards)
            if report.stats.counter_tuple() != expected:
                raise ReproError("warm pool produced different stats "
                                 "than the cold fleet")
        warm = time.perf_counter() - started
    return [
        f"bench serve: {jobs} job(s) x {installs} installs, "
        f"{shards} shard(s), {workers} worker(s), seed={seed}",
        f"  cold     : {cold:.3f}s total  "
        f"({jobs / cold:.2f} jobs/s) — new pool per job",
        f"  warm     : {warm:.3f}s total  "
        f"({jobs / warm:.2f} jobs/s) — resident pool, serve steady state",
        f"  speedup  : {cold / warm:.2f}x jobs/s "
        f"(identical merged stats verified per job)",
    ]


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    standalone = args.profile or args.serve
    if bool(args.write) == bool(args.compare) and not (
            standalone and not args.write and not args.compare):
        print("error: exactly one of --write/--compare is required "
              "(unless only --profile/--serve is given)",
              file=sys.stderr)
        return 2
    try:
        spec = CampaignSpec(installs=args.installs, seed=args.seed)
        if args.analyze:
            bench_name, unit, size = "analysis", "apps", args.apps
        else:
            bench_name, unit, size = "fleet", "installs", args.installs
        lines = []
        if args.write or args.compare or args.trace or args.profile:
            lines.append(
                f"bench {bench_name}: {size} {unit}, "
                f"{args.shards} shard(s), "
                f"backend={args.backend}, seed={args.seed}"
                + (", telemetry=on" if args.telemetry else ""))
        exit_code = 0
        warm_info = None
        if args.write or args.compare:
            if args.analyze:
                runs = time_analysis(args.apps, args.shards, args.backend,
                                     args.seed, args.repeat,
                                     telemetry=args.telemetry)
            else:
                runs = time_fleet(spec, args.shards, args.backend,
                                  args.repeat, telemetry=args.telemetry)
            best = min(runs)
            measured = best * (1.0 + args.inject_slowdown)
            lines += [
                "  runs     : " + ", ".join(f"{run:.3f}s" for run in runs),
                f"  best     : {best:.3f}s "
                f"({size / best:.0f} {unit}/s)",
            ]
            if args.warm and args.analyze:
                warm_info = time_analysis_warm(
                    args.apps, args.shards, args.backend, args.seed,
                    telemetry=args.telemetry)
                lines.append(
                    f"  warm     : {warm_info['warm_seconds']:.3f}s "
                    f"({warm_info['warm_throughput']:.0f} {unit}/s from "
                    f"cache, {warm_info['warm_hits']} hit(s), 0 analyzed; "
                    f"cold populate {warm_info['cold_seconds']:.3f}s)")
        if args.inject_slowdown and (args.write or args.compare):
            lines.append(
                f"  injected : +{args.inject_slowdown * 100.0:.1f}% "
                f"synthetic slowdown -> {measured:.3f}s")
        if args.write:
            baseline = BenchBaseline(
                name=bench_name,
                installs=size,
                shards=args.shards,
                backend=args.backend,
                repeats=args.repeat,
                wall_seconds=measured,
                throughput=size / measured,
                runs=[round(run, 6) for run in runs],
                # Host facts make cross-machine baselines interpretable;
                # the regression gate compares wall_seconds only, so the
                # block never affects a pass/fail verdict.
                meta={"seed": args.seed, "unit": unit,
                      "telemetry": bool(args.telemetry),
                      # Cache-path evidence only: the regression gate
                      # compares the cold, cache-free wall_seconds.
                      **({"warm": warm_info} if warm_info else {}),
                      "host": host_metadata()},
            )
            save_baseline(args.write, baseline)
            lines.append(f"  baseline : wrote {args.write}")
        elif args.compare:
            baseline = load_baseline(args.compare)
            if (baseline.installs, baseline.shards) != (size, args.shards):
                raise ReproError(
                    f"baseline {args.compare} measured "
                    f"{baseline.installs} {unit} / {baseline.shards} "
                    f"shard(s); rerun with matching "
                    f"--{unit}/--shards")
            gate = regression_gate(baseline, measured,
                                   threshold=args.threshold)
            lines.append(gate.render(name=baseline.name))
            exit_code = 0 if gate.ok else 1
        if args.trace:
            observed = CampaignSpec(installs=min(args.installs, 200),
                                    seed=args.seed, observe=True)
            report = run_fleet(observed, shards=args.shards,
                               backend="serial", progress=NullProgress())
            count = write_trace_jsonl(args.trace, report.trace_records())
            lines.append(f"  trace    : {count} record(s) -> {args.trace}")
        if args.profile:
            lines.append(f"  profile  : top {args.profile} functions by "
                         "cumulative time, one fleet run")
            lines.append(profile_fleet(spec, args.shards, args.backend,
                                       args.profile))
        if args.serve:
            lines += bench_serve(args.serve_installs, args.shards,
                                 args.serve, args.workers, args.seed)
        text = "\n".join(lines)
        print(text)
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return exit_code
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
