#!/usr/bin/env python3
"""Wall-clock benchmark harness for the fleet-engine hot path.

Times the reference fleet (a serial, attack-free campaign — the
engine's per-install overhead with no pool scheduling noise), then
either records the measurement as a ``BENCH_*.json`` baseline or
gates it against a committed one:

    python tools/bench.py --write BENCH_fleet.json
    python tools/bench.py --compare BENCH_fleet.json          # exit 1 on
                                                              # >10% slowdown

``--compare`` exits 0 when the best-of-N wall clock is within the
threshold of the baseline, 1 on a regression, 2 on usage errors.
``--inject-slowdown 0.2`` scales the measurement by +20% before the
gate — the synthetic-regression knob the tests use to prove the gate
actually fires.  ``--trace``/``--report`` export the evidence CI
uploads as build artifacts.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import CampaignSpec, NullProgress, run_fleet  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.obs import write_trace_jsonl  # noqa: E402
from repro.obs.baseline import (  # noqa: E402
    BenchBaseline,
    load_baseline,
    regression_gate,
    save_baseline,
)

#: The reference fleet: large enough that best-of-N wall clock is
#: stable (seconds, not milliseconds), small enough for a CI job.
DEFAULT_INSTALLS = 2000
DEFAULT_SHARDS = 4
DEFAULT_SEED = 7


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="benchmark the fleet engine against a wall-clock baseline")
    parser.add_argument("--installs", type=int, default=DEFAULT_INSTALLS)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--backend", default="serial",
                        choices=["serial", "process", "auto"],
                        help="serial by default: per-install cost without "
                             "pool scheduling noise")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions; the gate uses the best")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="tolerated relative slowdown (0.10 = 10%%)")
    parser.add_argument("--inject-slowdown", type=float, default=0.0,
                        metavar="FRAC",
                        help="synthetic slowdown added to the measurement "
                             "(testing the gate itself)")
    parser.add_argument("--write", metavar="PATH",
                        help="record the measurement as a baseline file")
    parser.add_argument("--compare", metavar="PATH",
                        help="gate the measurement against a baseline file")
    parser.add_argument("--trace", metavar="PATH",
                        help="also export a JSONL trace of one observed run")
    parser.add_argument("--report", metavar="PATH",
                        help="write the text report to PATH as well")
    parser.add_argument("--profile", type=int, default=0, metavar="N",
                        help="cProfile one fleet run and append the top N "
                             "functions by cumulative time (usable without "
                             "--write/--compare)")
    return parser


def time_fleet(spec: CampaignSpec, shards: int, backend: str,
               repeat: int) -> list:
    """Best-of-N timing of the reference fleet (seconds per repeat)."""
    runs = []
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        report = run_fleet(spec, shards=shards, backend=backend,
                           progress=NullProgress())
        runs.append(time.perf_counter() - started)
        if report.stats.runs != spec.installs:
            raise ReproError(
                f"benchmark fleet ran {report.stats.runs} installs, "
                f"expected {spec.installs}")
    return runs


def profile_fleet(spec: CampaignSpec, shards: int, backend: str,
                  top: int) -> str:
    """cProfile one fleet run; the top-``top`` cumulative-time report.

    Paths are stripped to bare filenames (``pstats.strip_dirs``) so the
    committed report is stable across checkouts and interpreters.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    run_fleet(spec, shards=shards, backend=backend, progress=NullProgress())
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return stream.getvalue().rstrip()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if bool(args.write) == bool(args.compare) and not (
            args.profile and not args.write and not args.compare):
        print("error: exactly one of --write/--compare is required "
              "(unless only --profile is given)",
              file=sys.stderr)
        return 2
    try:
        spec = CampaignSpec(installs=args.installs, seed=args.seed)
        lines = [
            f"bench fleet: {args.installs} installs, {args.shards} shard(s), "
            f"backend={args.backend}, seed={args.seed}",
        ]
        exit_code = 0
        if args.write or args.compare:
            runs = time_fleet(spec, args.shards, args.backend, args.repeat)
            best = min(runs)
            measured = best * (1.0 + args.inject_slowdown)
            lines += [
                "  runs     : " + ", ".join(f"{run:.3f}s" for run in runs),
                f"  best     : {best:.3f}s "
                f"({args.installs / best:.0f} installs/s)",
            ]
        if args.inject_slowdown and (args.write or args.compare):
            lines.append(
                f"  injected : +{args.inject_slowdown * 100.0:.1f}% "
                f"synthetic slowdown -> {measured:.3f}s")
        if args.write:
            baseline = BenchBaseline(
                name="fleet",
                installs=args.installs,
                shards=args.shards,
                backend=args.backend,
                repeats=args.repeat,
                wall_seconds=measured,
                throughput=args.installs / measured,
                runs=[round(run, 6) for run in runs],
                meta={"seed": args.seed},
            )
            save_baseline(args.write, baseline)
            lines.append(f"  baseline : wrote {args.write}")
        elif args.compare:
            baseline = load_baseline(args.compare)
            if (baseline.installs, baseline.shards) != (args.installs,
                                                        args.shards):
                raise ReproError(
                    f"baseline {args.compare} measured "
                    f"{baseline.installs} installs / {baseline.shards} "
                    f"shard(s); rerun with matching --installs/--shards")
            gate = regression_gate(baseline, measured,
                                   threshold=args.threshold)
            lines.append(gate.render(name=baseline.name))
            exit_code = 0 if gate.ok else 1
        if args.trace:
            observed = CampaignSpec(installs=min(args.installs, 200),
                                    seed=args.seed, observe=True)
            report = run_fleet(observed, shards=args.shards,
                               backend="serial", progress=NullProgress())
            count = write_trace_jsonl(args.trace, report.trace_records())
            lines.append(f"  trace    : {count} record(s) -> {args.trace}")
        if args.profile:
            lines.append(f"  profile  : top {args.profile} functions by "
                         "cumulative time, one fleet run")
            lines.append(profile_fleet(spec, args.shards, args.backend,
                                       args.profile))
        text = "\n".join(lines)
        print(text)
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return exit_code
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
