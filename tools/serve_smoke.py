#!/usr/bin/env python3
"""End-to-end smoke test of the campaign service (the CI gate).

Drives real ``repro serve`` daemon processes over their unix socket
and proves, in order:

1.  daemon start + health endpoint;
2.  campaign submission, live ``watch`` streaming, trace retrieval;
3.  fuzz-case submission through the same queue;
4.  double-run byte identity — two jobs with the same spec archive
    byte-identical trace JSONL;
5.  ops surface: the ``metrics`` op's Prometheus exposition parses
    and carries the telemetry rollup families, and the ``flight`` op
    shows the whole job lifecycle;
6.  hard kill (``SIGKILL``, no goodbye) mid-campaign, then restart:
    the recovered daemon resumes the job from its shard checkpoint,
    the final stats and trace are identical to an uninterrupted
    in-process reference run, and the flight recorder still holds the
    pre-kill events plus the restart's ``recover``.

Everything is a subprocess, nothing is mocked; the whole script has a
hard deadline (default 110s) so CI can never wedge on it.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.engine import CampaignSpec, NullProgress, run_fleet  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.obs import write_trace_jsonl  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402

DEADLINE = time.monotonic() + float(os.environ.get("SMOKE_DEADLINE", "110"))


def remaining() -> float:
    left = DEADLINE - time.monotonic()
    if left <= 0:
        raise ReproError("serve smoke exceeded its deadline")
    return left


def say(message: str) -> None:
    print(f"smoke: {message}", flush=True)


def start_daemon(state_dir: pathlib.Path, workers: int = 2) -> subprocess.Popen:
    """Launch ``repro serve`` in its own process group; wait for health."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir),
         "--workers", str(workers), "--backend", "process"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        start_new_session=True,  # killpg must not hit this script
    )
    client = ServeClient(socket_path=state_dir / "serve.sock")
    client.wait_until_ready(timeout=min(30.0, remaining()))
    return process


def stop_daemon(process: subprocess.Popen,
                state_dir: pathlib.Path) -> None:
    """Graceful shutdown via the protocol; reap the subprocess."""
    ServeClient(socket_path=state_dir / "serve.sock").shutdown()
    process.wait(timeout=min(30.0, remaining()))
    if process.returncode != 0:
        raise ReproError(
            f"daemon exited {process.returncode} on graceful shutdown")


def hard_kill(process: subprocess.Popen) -> None:
    """SIGKILL the daemon's whole process group — no cleanup runs."""
    os.killpg(os.getpgid(process.pid), signal.SIGKILL)
    process.wait(timeout=min(30.0, remaining()))


def main() -> int:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    spec = CampaignSpec(installs=300, seed=7, observe=True)

    # -- phase 1: daemon lifecycle + submission + streaming -------------------
    state_a = workdir / "state-a"
    daemon = start_daemon(state_a)
    client = ServeClient(socket_path=state_a / "serve.sock")
    health = client.health()
    assert health["ok"], health
    say(f"daemon up: workers={health['workers']} "
        f"backend={health['backend']}")

    job_one = client.submit_campaign(spec, shards=4, label="smoke-1")
    frames = client.watch(job_one["job_id"], timeout=remaining())
    shard_frames = [f for f in frames if f["event"] == "shard"]
    assert frames[-1]["event"] == "done", frames[-1]
    assert len(shard_frames) == 4, len(shard_frames)
    final = frames[-1]["job"]
    assert final["summary"]["runs"] == spec.installs, final["summary"]
    say(f"campaign {job_one['job_id']}: streamed "
        f"{len(shard_frames)} shard frame(s), "
        f"runs={final['summary']['runs']}")

    # fuzz case through the same queue
    from repro.fuzz.gen import generate_case

    case = generate_case(7, 3)
    fuzz_job = client.submit_fuzz(case, label="smoke-fuzz")
    fuzz_final = client.wait(fuzz_job["job_id"], timeout=remaining())
    assert fuzz_final["state"] == "done", fuzz_final
    say(f"fuzz case {fuzz_job['job_id']}: done "
        f"(seed={fuzz_final['spec']['seed']}, "
        f"shards={fuzz_final['shards']})")

    # trace retrieval by job id
    info = client.trace_info(job_one["job_id"])
    assert info["exists"], info
    trace_one = pathlib.Path(info["path"]).read_bytes()
    assert trace_one, "archived trace is empty"

    # -- phase 2: double-run byte identity ------------------------------------
    job_two = client.submit_campaign(spec, shards=4, label="smoke-2")
    client.wait(job_two["job_id"], timeout=remaining())
    trace_two = pathlib.Path(
        client.trace_info(job_two["job_id"])["path"]).read_bytes()
    assert trace_one == trace_two, (
        "same spec, different archived trace bytes")
    say(f"double run: {len(trace_one)} trace bytes, byte-identical")

    health = client.health()
    assert health["jobs_completed"] == 3, health
    assert health["warm_pool"], health  # the pool stayed resident
    assert health["worker_pids"], health
    assert health["jobs_by_state"]["done"] == 3, health
    assert health["telemetry"]["shards"] >= 4, health

    # -- phase 2b: ops surface — metrics exposition + flight recorder ---------
    from repro.obs.runtime import validate_exposition

    exposition = client.metrics()
    samples = validate_exposition(exposition)
    for family in ("repro_serve_jobs_completed_total",
                   "repro_telemetry_shards_total",
                   "repro_telemetry_cpu_seconds_total",
                   "repro_telemetry_wall_seconds_total",
                   "repro_telemetry_max_rss_kilobytes",
                   "repro_serve_shard_wall_ms_bucket",
                   "repro_serve_uptime_seconds"):
        assert family in exposition, f"missing family {family}"
    say(f"metrics scrape: {samples} valid sample(s), telemetry "
        f"rollups present")

    flight = client.flight()
    kinds = [event["kind"] for event in flight["events"]]
    for kind in ("recover", "submit", "schedule", "start",
                 "checkpoint", "finish"):
        assert kind in kinds, (kind, kinds)
    assert flight["recorded"] == len(kinds), flight["recorded"]
    say(f"flight recorder: {flight['recorded']} event(s), "
        f"kinds cover the job lifecycle")

    stop_daemon(daemon, state_a)
    say("graceful shutdown clean")

    # -- phase 3: hard kill mid-campaign, restart, resume ---------------------
    state_b = workdir / "state-b"
    big = CampaignSpec(installs=12000, seed=7, observe=True)
    daemon = start_daemon(state_b)
    client = ServeClient(socket_path=state_b / "serve.sock")
    victim = client.submit_campaign(big, shards=8, label="victim")
    while True:
        done, _total = client.status(victim["job_id"])["progress"]
        if done >= 2:
            break
        remaining()
        time.sleep(0.02)
    hard_kill(daemon)
    say(f"hard-killed the daemon after {done} shard(s) of 8")

    daemon = start_daemon(state_b)
    client = ServeClient(socket_path=state_b / "serve.sock")
    assert client.health()["jobs_recovered"] == 1, client.health()

    # The file-backed flight ring survived the SIGKILL: the pre-kill
    # lifecycle events are still there, and the restart appended its
    # own ``recover`` after them.
    events = client.flight()["events"]
    kinds = [event["kind"] for event in events]
    assert "submit" in kinds, kinds
    assert "start" in kinds, kinds
    last_recover = max(i for i, k in enumerate(kinds) if k == "recover")
    assert last_recover > kinds.index("submit"), kinds
    say(f"flight survived SIGKILL: {len(kinds)} event(s), "
        f"recover recorded after the pre-kill lifecycle")

    resumed = client.wait(victim["job_id"], timeout=remaining())
    assert resumed["state"] == "done", resumed
    restored = resumed["counters"].get("restored", 0)
    assert restored >= 2, resumed["counters"]

    reference = run_fleet(big, shards=8, backend="serial",
                          progress=NullProgress())
    from repro.serve.protocol import stats_counters

    assert resumed["summary"] == stats_counters(reference.stats), (
        "resumed stats differ from the uninterrupted reference")
    reference_trace = workdir / "reference.jsonl"
    write_trace_jsonl(str(reference_trace), reference.trace_records())
    resumed_trace = pathlib.Path(
        client.trace_info(victim["job_id"])["path"]).read_bytes()
    assert resumed_trace == reference_trace.read_bytes(), (
        "resumed trace differs from the uninterrupted reference")
    say(f"kill/resume: {restored} shard(s) restored, stats bit-identical, "
        f"trace byte-identical ({len(resumed_trace)} bytes)")

    stop_daemon(daemon, state_b)
    say(f"all phases green with {DEADLINE - time.monotonic():.0f}s to spare")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ReproError as error:
        print(f"smoke: FAIL: {error}", file=sys.stderr)
        sys.exit(1)
